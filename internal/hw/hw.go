// Package hw describes the abstract DNN accelerator of the paper's
// Figure 2 — PEs with private L1 scratchpads, a shared L2 scratchpad, and
// a NoC between them — plus the area/power models of the building blocks
// used by the design-space exploration of Section 5.2.
//
// The paper synthesizes multipliers, adders, buses, arbiters and
// scratchpads at 28 nm and fits regressions (linear for bus, quadratic
// for arbiter). Synthesis tooling is unavailable here, so this package
// embeds representative 28 nm constants under the same functional forms;
// Figure 13's conclusions depend on the forms, not the coefficients.
package hw

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/noc"
)

// ErrInvalidConfig tags hardware-configuration validation failures so
// callers can tell a malformed configuration apart from an internal
// fault with errors.Is(err, ErrInvalidConfig).
var ErrInvalidConfig = errors.New("invalid hardware config")

// Config is the hardware configuration MAESTRO analyzes a dataflow
// against: the parameters listed in Figure 2.
type Config struct {
	Name   string
	NumPEs int
	// VectorWidth is the ALU width of one PE in MACs per cycle.
	VectorWidth int
	// L1Size and L2Size are scratchpad capacities in bytes. Zero means
	// "size to the dataflow's requirement" (the DSE tool's behaviour:
	// "the DSE tool places the exact amount buffers MAESTRO reported").
	L1Size int64
	L2Size int64
	// NoCs holds the NoC model per cluster level, outermost first. A
	// dataflow with more levels than entries reuses the last entry for
	// the inner levels; an empty slice is invalid.
	NoCs []noc.Model
	// OffchipBandwidth is the DRAM link bandwidth in elements per cycle.
	OffchipBandwidth float64
	// ElemBytes is the datatype size (1 for int8, 2 for fp16...).
	ElemBytes int
	// SparseImbalance models the load imbalance of zero-skipping PEs
	// under random (Bernoulli) sparsity: the slowest PE of a step sees
	// more non-zeros than the mean, so the expected maximum of the
	// per-PE work governs the step (the statistical-sparsity extension
	// the paper leaves as future work in Section 4.4).
	SparseImbalance bool
	// ClockGHz converts cycles to seconds for throughput/power reporting.
	ClockGHz float64
}

// Normalize fills defaults and returns the config.
func (c Config) Normalize() Config {
	if c.VectorWidth == 0 {
		c.VectorWidth = 1
	}
	if c.ElemBytes == 0 {
		c.ElemBytes = 1
	}
	if c.ClockGHz == 0 {
		c.ClockGHz = 1
	}
	if c.OffchipBandwidth == 0 {
		c.OffchipBandwidth = 16
	}
	if len(c.NoCs) == 0 {
		c.NoCs = []noc.Model{noc.Bus(16)}
	}
	return c
}

// Validate reports an error for inconsistent parameters.
func (c Config) Validate() error {
	if c.NumPEs < 1 {
		return fmt.Errorf("%w: hw %s: NumPEs %d < 1", ErrInvalidConfig, c.Name, c.NumPEs)
	}
	if c.VectorWidth < 1 || c.ElemBytes < 1 {
		return fmt.Errorf("%w: hw %s: bad vector width or element size", ErrInvalidConfig, c.Name)
	}
	if c.L1Size < 0 || c.L2Size < 0 {
		return fmt.Errorf("%w: hw %s: negative scratchpad size", ErrInvalidConfig, c.Name)
	}
	// !(x > 0) rejects NaN too; ordered comparisons are always false on it.
	if !(c.ClockGHz > 0) || math.IsInf(c.ClockGHz, 0) {
		return fmt.Errorf("%w: hw %s: clock %v GHz must be positive and finite", ErrInvalidConfig, c.Name, c.ClockGHz)
	}
	if !(c.OffchipBandwidth > 0) || math.IsInf(c.OffchipBandwidth, 0) {
		return fmt.Errorf("%w: hw %s: off-chip bandwidth %v must be positive and finite", ErrInvalidConfig, c.Name, c.OffchipBandwidth)
	}
	if len(c.NoCs) == 0 {
		return fmt.Errorf("%w: hw %s: no NoC model", ErrInvalidConfig, c.Name)
	}
	for _, m := range c.NoCs {
		if err := m.Validate(); err != nil {
			return fmt.Errorf("%w: hw %s: %v", ErrInvalidConfig, c.Name, err)
		}
	}
	return nil
}

// NoCAt returns the NoC model for cluster level i.
func (c Config) NoCAt(i int) noc.Model {
	if i < len(c.NoCs) {
		return c.NoCs[i]
	}
	return c.NoCs[len(c.NoCs)-1]
}

// PeakMACsPerCycle returns the compute roof of the configuration.
func (c Config) PeakMACsPerCycle() float64 {
	return float64(c.NumPEs * c.VectorWidth)
}

// Eyeriss-like and MAERI-like reference configurations used by the
// validation experiment (Figure 9).

// MAERI64 approximates the MAERI RTL configuration the paper validates
// against: 64 PEs behind fat distribution/reduction trees.
func MAERI64() Config {
	return Config{
		Name: "MAERI-64", NumPEs: 64, VectorWidth: 1,
		L1Size: 2 * 1024, L2Size: 1 << 20,
		NoCs: []noc.Model{noc.Tree(64)},
	}.Normalize()
}

// Eyeriss168 approximates the Eyeriss chip: 168 PEs, hierarchical buses
// with dedicated channels per tensor (the paper: "a bandwidth of 3X
// properly models the top level NoC").
func Eyeriss168() Config {
	m := noc.Bus(3)
	m.Reduction = true // PE-column psum forwarding
	m.Channels = 3     // dedicated input/weight/output channels
	return Config{
		Name: "Eyeriss-168", NumPEs: 168, VectorWidth: 1,
		L1Size: 512, L2Size: 108 * 1024,
		NoCs: []noc.Model{m},
	}.Normalize()
}

// Accel256 is the 256-PE, 32 GB/s configuration of the paper's case
// studies (Section 5.1).
func Accel256() Config {
	bw := noc.GBpsToElems(32, 1, 1)
	m := noc.Bus(bw)
	m.Reduction = true
	return Config{
		Name: "Accel-256", NumPEs: 256, VectorWidth: 1,
		L1Size: 2 * 1024, L2Size: 1 << 20,
		NoCs: []noc.Model{m},
	}.Normalize()
}

// CostModel holds the area (µm²) and power (mW) coefficients of the
// accelerator building blocks, following the paper's regression forms:
// MACs and SRAM linear, bus linear in endpoints, arbiter quadratic.
type CostModel struct {
	MACAreaUm2       float64 // one fixed-point MAC unit
	SRAMAreaUm2PerB  float64 // scratchpad area per byte
	BusAreaUm2PerEP  float64 // bus wiring per endpoint per element/cycle
	ArbAreaUm2PerEP2 float64 // arbiter area per endpoint squared

	MACPowerMW       float64 // one MAC at full utilization
	SRAMPowerMWPerKB float64 // leakage+clock per KB
	BusPowerMWPerEP  float64
	ArbPowerMWPerEP2 float64

	// StaticMWPerMM2 is the leakage power density; it charges slow
	// designs for the time their silicon idles (at the nominal clock,
	// 1 mW for 1 cycle at 1 GHz is exactly 1 pJ).
	StaticMWPerMM2 float64
}

// StaticEnergyPJ returns the leakage energy of `area` mm² over `cycles`
// at a 1 GHz nominal clock.
func (cm CostModel) StaticEnergyPJ(areaMM2 float64, cycles int64) float64 {
	return cm.StaticMWPerMM2 * areaMM2 * float64(cycles)
}

// Default28nm returns coefficients representative of a 28 nm process,
// calibrated so an Eyeriss-scale design (168 PEs, ~192 KB of SRAM,
// modest NoC) lands near the paper's reference envelope of 16 mm² /
// 450 mW.
func Default28nm() CostModel {
	return CostModel{
		MACAreaUm2:       1500,
		SRAMAreaUm2PerB:  3.5,
		BusAreaUm2PerEP:  80,
		ArbAreaUm2PerEP2: 0.45,

		MACPowerMW:       0.45,
		SRAMPowerMWPerKB: 0.25,
		BusPowerMWPerEP:  0.09,
		ArbPowerMWPerEP2: 0.0002,

		StaticMWPerMM2: 18,
	}
}

// Area returns the estimated die area in mm² for a configuration, given
// total L1 (all PEs) and L2 capacities in bytes and the top-level NoC
// bandwidth in elements/cycle.
func (cm CostModel) Area(numPEs int, l1Total, l2 int64, nocBW float64) float64 {
	um2 := cm.MACAreaUm2*float64(numPEs) +
		cm.SRAMAreaUm2PerB*float64(l1Total+l2) +
		cm.BusAreaUm2PerEP*float64(numPEs)*nocBW +
		cm.ArbAreaUm2PerEP2*float64(numPEs)*float64(numPEs)
	return um2 / 1e6
}

// Power returns the estimated peak power in mW under the same parameters.
func (cm CostModel) Power(numPEs int, l1Total, l2 int64, nocBW float64) float64 {
	return cm.MACPowerMW*float64(numPEs) +
		cm.SRAMPowerMWPerKB*float64(l1Total+l2)/1024 +
		cm.BusPowerMWPerEP*float64(numPEs)*nocBW/8 +
		cm.ArbPowerMWPerEP2*float64(numPEs)*float64(numPEs)
}
