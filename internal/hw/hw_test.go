package hw

import (
	"testing"

	"repro/internal/noc"
)

func TestNormalizeDefaults(t *testing.T) {
	c := Config{NumPEs: 8}.Normalize()
	if c.VectorWidth != 1 || c.ElemBytes != 1 || c.ClockGHz != 1 {
		t.Errorf("defaults: %+v", c)
	}
	if len(c.NoCs) == 0 || c.OffchipBandwidth == 0 {
		t.Errorf("NoC/DRAM defaults missing: %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Config{
		{NumPEs: 0},
		{NumPEs: 4, VectorWidth: -1},
		{NumPEs: 4, VectorWidth: 1, ElemBytes: 1, NoCs: []noc.Model{{Bandwidth: 0}}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
}

func TestNoCAtFallsBack(t *testing.T) {
	c := Config{NumPEs: 8, NoCs: []noc.Model{noc.Bus(4), noc.Bus(8)}}.Normalize()
	if c.NoCAt(0).Bandwidth != 4 || c.NoCAt(1).Bandwidth != 8 {
		t.Error("per-level NoCs not respected")
	}
	if c.NoCAt(5).Bandwidth != 8 {
		t.Error("deep levels must reuse the last NoC entry")
	}
}

func TestPresets(t *testing.T) {
	for _, c := range []Config{MAERI64(), Eyeriss168(), Accel256()} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
	if Eyeriss168().NumPEs != 168 || MAERI64().NumPEs != 64 || Accel256().NumPEs != 256 {
		t.Error("preset PE counts wrong")
	}
	if Accel256().NoCAt(0).Bandwidth != 32 {
		t.Errorf("Accel256 bandwidth = %v; want 32 elem/cyc (32 GB/s)", Accel256().NoCAt(0).Bandwidth)
	}
}

func TestCostModelForms(t *testing.T) {
	cm := Default28nm()
	// Linear in PEs (holding buffers constant): doubling PEs should more
	// than double area because the arbiter term is quadratic.
	a1 := cm.Area(128, 0, 0, 8)
	a2 := cm.Area(256, 0, 0, 8)
	if a2 <= a1 {
		t.Error("area not increasing in PEs")
	}
	// SRAM is linear per byte.
	s1 := cm.Area(1, 1<<20, 0, 0) - cm.Area(1, 0, 0, 0)
	s2 := cm.Area(1, 2<<20, 0, 0) - cm.Area(1, 0, 0, 0)
	if diff := s2 - 2*s1; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("SRAM area non-linear: %v vs %v", s1, s2)
	}
	// The arbiter quadratic term: area(2n) - 2*area(n) grows with n when
	// buffers and bus are excluded.
	quad := func(n int) float64 { return cm.Area(n, 0, 0, 0) }
	if quad(512)-2*quad(256) <= quad(256)-2*quad(128) {
		t.Error("arbiter term not super-linear")
	}
	// An Eyeriss-scale design must sit well inside the paper's
	// 16 mm² / 450 mW reference envelope.
	area := cm.Area(168, 168*512, 108<<10, 3)
	power := cm.Power(168, 168*512, 108<<10, 3)
	if area > 16 || power > 450 {
		t.Errorf("Eyeriss-scale estimate out of envelope: %.2f mm², %.1f mW", area, power)
	}
}

func TestStaticEnergy(t *testing.T) {
	cm := Default28nm()
	// 1 mW over 1 cycle at 1 GHz is 1 pJ: 18 mW/mm² * 2 mm² * 1e6 cycles.
	got := cm.StaticEnergyPJ(2, 1_000_000)
	if want := 18.0 * 2 * 1e6; got != want {
		t.Errorf("static energy = %v; want %v", got, want)
	}
}

func TestPeakMACs(t *testing.T) {
	c := Config{NumPEs: 64, VectorWidth: 4}.Normalize()
	if c.PeakMACsPerCycle() != 256 {
		t.Errorf("peak = %v", c.PeakMACsPerCycle())
	}
}
