package hw

import (
	"strings"
	"testing"
)

const sampleCfg = `
# an edge accelerator
name: edge-npu
pes: 256
vector_width: 2
l1_bytes: 2048
elem_bytes: 1
clock_ghz: 1.0
l2_bytes: 1048576
offchip_gbps: 16
noc: bus bandwidth=32 latency=2 reduction=true channels=3   // top level
noc: crossbar bandwidth=64
`

func TestParseConfig(t *testing.T) {
	c, err := ParseConfig(sampleCfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "edge-npu" || c.NumPEs != 256 || c.VectorWidth != 2 {
		t.Errorf("parsed %+v", c)
	}
	if c.L1Size != 2048 || c.L2Size != 1<<20 {
		t.Errorf("buffers: %d, %d", c.L1Size, c.L2Size)
	}
	if c.OffchipBandwidth != 16 {
		t.Errorf("offchip = %v", c.OffchipBandwidth)
	}
	if len(c.NoCs) != 2 {
		t.Fatalf("nocs = %d", len(c.NoCs))
	}
	top := c.NoCs[0]
	if top.Bandwidth != 32 || top.AvgLatency != 2 || !top.Reduction || !top.Multicast {
		t.Errorf("top noc = %+v", top)
	}
	if top.Channels != 3 {
		t.Errorf("channels = %d; want 3", top.Channels)
	}
	if c.NoCs[1].Bandwidth != 64 {
		t.Errorf("inner noc = %+v", c.NoCs[1])
	}
}

func TestParseConfigDefaults(t *testing.T) {
	c, err := ParseConfig("pes: 64")
	if err != nil {
		t.Fatal(err)
	}
	if c.VectorWidth != 1 || len(c.NoCs) == 0 {
		t.Errorf("defaults missing: %+v", c)
	}
}

func TestParseConfigMeshSizedToPEs(t *testing.T) {
	c, err := ParseConfig("pes: 100\nnoc: mesh")
	if err != nil {
		t.Fatal(err)
	}
	if c.NoCs[0].Bandwidth != 10 || c.NoCs[0].AvgLatency != 10 {
		t.Errorf("mesh sizing: %+v", c.NoCs[0])
	}
}

func TestParseConfigErrors(t *testing.T) {
	bad := []string{
		"bogus_key: 3",
		"pes: lots",
		"pes: 8\nnoc: warp bandwidth=3",
		"pes: 8\nnoc: bus width=3",
		"pes: 8\nnoc: bus bandwidth",
		"just a line",
		"pes: 0",
	}
	for _, src := range bad {
		if _, err := ParseConfig(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
	if _, err := ParseConfig(sampleCfg + "\nnoc: bus multicast=maybe"); err == nil ||
		!strings.Contains(err.Error(), "multicast") {
		t.Errorf("bool parse error not surfaced: %v", err)
	}
}
