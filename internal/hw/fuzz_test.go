package hw

import (
	"math"
	"os"
	"testing"
)

// FuzzParseHW drives the accelerator-description parser with arbitrary
// input, mirroring FuzzParseDataflow: it must never panic or hang, and
// any configuration it accepts must be internally consistent — it
// re-validates, and no derived quantity is NaN or infinite.
func FuzzParseHW(f *testing.F) {
	if src, err := os.ReadFile("../../testdata/edge.hw"); err == nil {
		f.Add(string(src))
	}
	seeds := []string{
		"name: npu\npes: 256\nnoc: bus bandwidth=32 latency=2 multicast=true reduction=true",
		"pes: 64\nvector_width: 4\nl1_bytes: 2048\nl2_bytes: 1048576",
		"pes: 16\nelem_bytes: 2\nclock_ghz: 1.5\noffchip_gbps: 16\nnoc: tree",
		"pes: 100\nnoc: mesh\nnoc: bus bandwidth=64",
		"pes: 9\nnoc: crossbar channels=3\nnoc: systolic",
		"# comment only\n// and another\n",
		// Malformed variants: bad keys, bad values, non-physical numbers.
		"pes: 64\nnoc: bus bandwidth=NaN",
		"clock_ghz: NaN\npes: 8",
		"clock_ghz: +Inf\npes: 8",
		"pes: 9223372036854775807\nnoc: mesh",
		"pes: -5\nnoc: tree",
		"l1_bytes: -1\npes: 4",
		"pes 64",
		"mystery: 3",
		"noc: warp bandwidth=1",
		"noc: bus bandwidth",
		"pes: 0x10",
		"offchip_gbps: 1e308\npes: 2\nclock_ghz: 1e-308",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		cfg, err := ParseConfig(src)
		if err != nil {
			return
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("ParseConfig accepted a config its own Validate rejects: %v\ninput: %q", verr, src)
		}
		peak := cfg.PeakMACsPerCycle()
		if math.IsNaN(peak) || math.IsInf(peak, 0) || peak <= 0 {
			t.Fatalf("accepted config has non-physical peak %v MACs/cycle\ninput: %q", peak, src)
		}
		if math.IsNaN(cfg.OffchipBandwidth) || math.IsInf(cfg.OffchipBandwidth, 0) {
			t.Fatalf("accepted config has off-chip bandwidth %v\ninput: %q", cfg.OffchipBandwidth, src)
		}
		for i, m := range cfg.NoCs {
			if math.IsNaN(m.Bandwidth) || math.IsInf(m.Bandwidth, 0) {
				t.Fatalf("accepted config NoC %d has bandwidth %v\ninput: %q", i, m.Bandwidth, src)
			}
		}
	})
}

// TestCeilSqrt pins the mesh-sizing helper, including the giant inputs
// that used to spin the old linear search.
func TestCeilSqrt(t *testing.T) {
	cases := []struct{ v, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {4, 2}, {5, 3},
		{9, 3}, {10, 4}, {64, 8}, {100, 10}, {101, 11},
	}
	for _, c := range cases {
		if got := ceilSqrt(c.v); got != c.want {
			t.Errorf("ceilSqrt(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Huge values terminate quickly and satisfy the contract n² >= v.
	for _, v := range []int{1 << 40, 1<<62 + 12345, math.MaxInt64} {
		n := ceilSqrt(v)
		if uint64(n)*uint64(n) < uint64(v) {
			t.Errorf("ceilSqrt(%d) = %d: n*n < v", v, n)
		}
		if n > 1 && uint64(n-1)*uint64(n-1) >= uint64(v) {
			t.Errorf("ceilSqrt(%d) = %d not minimal", v, n)
		}
	}
}
