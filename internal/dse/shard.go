package dse

import "sort"

// Shard is one partition of a sweep's (PE count × first tile knob)
// plane: the sub-space spanned by Shard.PEs × Shard.P1 with every other
// axis (P2, bandwidths, buffer grids) inherited from the full space.
// The fleet coordinator dispatches one shard per service call and
// routes it by the shard's PE set, so repeat sweeps land each PE
// count's profiles on the node whose cache already holds them.
type Shard struct {
	// Index is the shard's position in the partition, 0-based.
	Index int
	// Of is the partition size (every shard of one Partition call
	// carries the same value).
	Of int
	// PEs is the contiguous slice of the sweep's PE axis this shard
	// covers.
	PEs []int
	// P1 is the contiguous slice of the sweep's first knob axis this
	// shard covers.
	P1 []int
}

// Partition splits the pes × p1 plane into at most target shards, none
// empty, pairwise disjoint, jointly covering every (pe, p1) pair
// exactly once. Axes are partitioned contiguously in input order.
//
// The PE axis splits first — profiles are keyed by (dataflow, layer,
// numPEs), so a shard that spans a single PE count keeps a node's
// profile cache hot — and only once every shard holds one PE count
// does the knob axis split further. target values above len(pes) ×
// len(p1) are clamped; target < 1 yields a single shard. Empty axes
// yield nil.
func Partition(pes, p1 []int, target int) []Shard {
	if len(pes) == 0 || len(p1) == 0 {
		return nil
	}
	if target < 1 {
		target = 1
	}
	if max := len(pes) * len(p1); target > max {
		target = max
	}
	var shards []Shard
	if target <= len(pes) {
		for _, chunk := range chunks(pes, target) {
			shards = append(shards, Shard{PEs: chunk, P1: p1})
		}
	} else {
		// One shard per PE count, then split the knob axis to approach
		// the target. ceil division keeps the product ≥ target without
		// overshooting per-PE splits beyond len(p1).
		perPE := (target + len(pes) - 1) / len(pes)
		for _, pe := range pes {
			for _, kchunk := range chunks(p1, perPE) {
				shards = append(shards, Shard{PEs: []int{pe}, P1: kchunk})
			}
		}
	}
	for i := range shards {
		shards[i].Index = i
		shards[i].Of = len(shards)
	}
	return shards
}

// chunks splits s into n contiguous non-empty pieces as evenly as
// possible (n is clamped to len(s)).
func chunks(s []int, n int) [][]int {
	if n > len(s) {
		n = len(s)
	}
	out := make([][]int, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(s)/n, (i+1)*len(s)/n
		out = append(out, s[lo:hi])
	}
	return out
}

// Points counts the (pe, p1) pairs the shard covers.
func (sh Shard) Points() int { return len(sh.PEs) * len(sh.P1) }

// MergePareto folds new points into an existing Pareto front and
// returns the frontier of the union. It is the coordinator's
// incremental merge: folding shard results one at a time through
// MergePareto yields exactly Pareto of the concatenation of every
// shard's points, in the same order — dominance is transitive, so
// discarding a shard's interior points early never changes the final
// front. front must itself be a Pareto front (e.g. nil, or a previous
// MergePareto result); pts may be arbitrary.
func MergePareto(front, pts []Point) []Point {
	if len(pts) == 0 {
		return front
	}
	merged := make([]Point, 0, len(front)+len(pts))
	merged = append(merged, front...)
	merged = append(merged, pts...)
	return Pareto(merged)
}

// SortPoints orders points canonically — by PE count, knobs, bandwidth,
// then buffer capacities — so fronts assembled in nondeterministic
// completion order (parallel workers, fleet shards) compare equal
// bit-for-bit.
func SortPoints(pts []Point) {
	sort.Slice(pts, func(i, j int) bool {
		a, b := pts[i], pts[j]
		switch {
		case a.NumPEs != b.NumPEs:
			return a.NumPEs < b.NumPEs
		case a.P1 != b.P1:
			return a.P1 < b.P1
		case a.P2 != b.P2:
			return a.P2 < b.P2
		case a.BW != b.BW:
			return a.BW < b.BW
		case a.L1Bytes != b.L1Bytes:
			return a.L1Bytes < b.L1Bytes
		default:
			return a.L2Bytes < b.L2Bytes
		}
	})
}
