package dse

import (
	"math/rand"
	"reflect"
	"testing"
)

// naivePareto is the pre-optimization O(n²) implementation, kept as the
// property-test oracle for the sort-and-scan version.
func naivePareto(pts []Point) []Point {
	var front []Point
	for i, p := range pts {
		dominated := false
		for j, q := range pts {
			if i == j {
				continue
			}
			if q.Throughput >= p.Throughput && q.EnergyPJ <= p.EnergyPJ &&
				(q.Throughput > p.Throughput || q.EnergyPJ < p.EnergyPJ) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	return front
}

// TestParetoMatchesNaive compares the O(n log n) frontier against the
// naive oracle on random point sets. Small discrete coordinate ranges
// force heavy ties and exact duplicates — the cases where domination
// strictness matters — and exact slice equality also checks that input
// order is preserved.
func TestParetoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(64)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{
				NumPEs:     i, // distinguishes duplicates in failure output
				Throughput: float64(rng.Intn(8)),
				EnergyPJ:   float64(rng.Intn(8)),
			}
		}
		got := Pareto(pts)
		want := naivePareto(pts)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: frontier mismatch\npoints: %+v\ngot:  %+v\nwant: %+v",
				trial, pts, got, want)
		}
	}
}

// TestParetoContinuous repeats the property test with continuous
// coordinates (ties essentially impossible) and larger sets.
func TestParetoContinuous(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(400)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{Throughput: rng.Float64() * 100, EnergyPJ: rng.Float64() * 1e6}
		}
		got := Pareto(pts)
		want := naivePareto(pts)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d): frontier mismatch", trial, n)
		}
	}
}

// TestDefaultGridDegenerate is the regression test for the infinite loop
// DefaultGrid used to enter when step <= 1 (v *= step never advances) or
// lo <= 0 (0 * step == 0 forever).
func TestDefaultGridDegenerate(t *testing.T) {
	cases := []struct {
		lo, hi int64
		step   float64
	}{
		{64, 1 << 14, 1},   // step == 1: v never grows
		{64, 1 << 14, 0.5}, // step < 1: v shrinks forever
		{64, 1 << 14, -2},  // negative step
		{0, 1 << 14, 2},    // lo == 0: 0*2 == 0 forever
		{-8, 1 << 14, 2},   // negative lo
		{1 << 14, 64, 2},   // inverted range
	}
	for _, c := range cases {
		if g := DefaultGrid(c.lo, c.hi, c.step); g != nil {
			t.Errorf("DefaultGrid(%d, %d, %g) = %v, want nil", c.lo, c.hi, c.step, g)
		}
	}
	if got := DefaultGrid(64, 256, 2); !reflect.DeepEqual(got, []int64{64, 128, 256}) {
		t.Errorf("DefaultGrid(64, 256, 2) = %v", got)
	}
	if got := DefaultGrid(100, 100, 2); !reflect.DeepEqual(got, []int64{100}) {
		t.Errorf("DefaultGrid(100, 100, 2) = %v", got)
	}
}
