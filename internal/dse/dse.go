// Package dse is the hardware design-space exploration tool of the
// paper's Section 5.2: driven by MAESTRO, it sweeps the number of PEs,
// scratchpad capacities (via the dataflow's tile-size knobs — "the DSE
// tool places the exact amount buffers MAESTRO reported"), and NoC
// bandwidth under area and power constraints, and reports
// throughput-, energy- and EDP-optimized design points plus the Pareto
// frontier (Figure 13).
//
// The tool reproduces the paper's skip-invalid optimization: before
// descending into the inner parameter loops it bounds the minimum area
// and power any inner point could have and skips the whole sub-space
// arithmetically, which is what makes the effective exploration rate
// orders of magnitude higher than the MAESTRO invocation rate.
package dse

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/energy"
	"repro/internal/hw"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// Template builds a dataflow for a pair of tile-size knobs.
type Template struct {
	Name   string
	Build  func(p1, p2 int) dataflow.Dataflow
	P1, P2 []int // knob value sweeps
}

// Space is the search space of one DSE run.
type Space struct {
	Layer    tensor.Layer
	Template Template
	// PEs and BWs are the hardware axes (elements/cycle for bandwidth).
	PEs []int
	BWs []float64
	// L1Steps/L2Steps count the buffer-capacity grid the raw space spans:
	// for every mapping the buffers are placed at the exact requirement,
	// and all grid capacities >= the requirement (within budget) are
	// valid-by-dominance and counted arithmetically instead of evaluated.
	L1Grid []int64
	L2Grid []int64

	AreaBudgetMM2 float64
	PowerBudgetMW float64
	Cost          hw.CostModel
	// Workers bounds parallelism; 0 means GOMAXPROCS.
	Workers int
	// Profiles, when set, fetches the per-(dataflow, layer, PEs) profiles
	// through a shared cache so repeated runs over the same mappings
	// (e.g. the analysis service) skip the cluster walk entirely. When
	// nil every mapping is profiled fresh, keeping Stats.Invoked
	// deterministic for benchmarks.
	Profiles *core.ProfileCache
	// Ctx carries observability: when an obs recorder is attached
	// (obs.WithRecorder) Explore emits a "dse.explore" span with one
	// "dse.mapping" child per (PEs, P1, P2) point, each containing its
	// profile span and a single "core.price_batch" span covering the
	// whole bandwidth axis. Nil means Background.
	Ctx context.Context
	// Progress, when non-nil, receives periodic exploration updates from
	// a single reporter goroutine (so the callback never runs
	// concurrently with itself), plus one final update on completion.
	Progress func(Progress)
	// ProgressEvery is the reporting interval (default 1s).
	ProgressEvery time.Duration
}

// Progress is one live exploration update.
type Progress struct {
	Explored int64 // grid points covered so far
	Invoked  int64 // cluster walks performed
	Priced   int64 // hardware points priced
	Valid    int64 // valid designs found
	Elapsed  time.Duration
}

// Rate returns explored designs per second so far.
func (p Progress) Rate() float64 {
	if p.Elapsed <= 0 {
		return 0
	}
	return float64(p.Explored) / p.Elapsed.Seconds()
}

// Point is one valid design.
type Point struct {
	NumPEs  int
	BW      float64 // elements/cycle
	P1, P2  int
	L1Bytes int64 // per-PE scratchpad, as required by the mapping
	L2Bytes int64

	AreaMM2    float64
	PowerMW    float64
	Runtime    int64
	Throughput float64 // MACs/cycle
	EnergyPJ   float64 // on-chip energy for the layer
	EDP        float64
}

// Stats summarizes one exploration run (the paper's Figure 13(c)).
type Stats struct {
	Raw      int64 // full parameter grid including buffer axes
	Explored int64 // grid points covered (evaluated or bulk-skipped)
	Invoked  int64 // cluster walks actually performed (profiles built)
	Priced   int64 // hardware points priced against those profiles
	Valid    int64 // valid design points found
	Elapsed  time.Duration
}

// Rate returns explored designs per second.
func (s Stats) Rate() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Explored) / s.Elapsed.Seconds()
}

// DefaultGrid builds a geometric capacity grid between lo and hi bytes.
// Degenerate inputs — a non-positive lower bound, an inverted range, or
// a ratio <= 1 (which would never advance the loop) — yield nil.
func DefaultGrid(lo, hi int64, step float64) []int64 {
	if lo < 1 || hi < lo || step <= 1 {
		return nil
	}
	var g []int64
	for v := float64(lo); v <= float64(hi); v *= step {
		g = append(g, int64(v))
	}
	return g
}

// exploreCounters are the live run counters: workers update them as
// they go so the progress reporter can snapshot a consistent-enough
// view mid-flight, and the final Stats reads them after the barrier.
type exploreCounters struct {
	explored atomic.Int64
	invoked  atomic.Int64
	priced   atomic.Int64
	valid    atomic.Int64
}

func (c *exploreCounters) progress(start time.Time) Progress {
	return Progress{
		Explored: c.explored.Load(),
		Invoked:  c.invoked.Load(),
		Priced:   c.priced.Load(),
		Valid:    c.valid.Load(),
		Elapsed:  time.Since(start),
	}
}

// Explore sweeps the space and returns all valid design points.
func Explore(sp Space) ([]Point, Stats) {
	start := time.Now()
	stats := Stats{}
	gridPerMapping := int64(len(sp.L1Grid)) * int64(len(sp.L2Grid))
	if gridPerMapping == 0 {
		gridPerMapping = 1
	}
	stats.Raw = int64(len(sp.PEs)) * int64(len(sp.BWs)) *
		int64(len(sp.Template.P1)) * int64(len(sp.Template.P2)) * gridPerMapping

	ctx := sp.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, span := obs.Start(ctx, "dse.explore",
		obs.String("template", sp.Template.Name),
		obs.String("layer", sp.Layer.Name),
		obs.Int64("raw_designs", stats.Raw))

	workers := sp.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var c exploreCounters
	var reporterDone chan struct{}
	stopReporter := make(chan struct{})
	if sp.Progress != nil {
		every := sp.ProgressEvery
		if every <= 0 {
			every = time.Second
		}
		reporterDone = make(chan struct{})
		go func() {
			defer close(reporterDone)
			t := time.NewTicker(every)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					sp.Progress(c.progress(start))
				case <-stopReporter:
					sp.Progress(c.progress(start))
					return
				}
			}
		}()
	}

	type job struct{ pes int }
	jobs := make(chan job)
	var mu sync.Mutex
	var points []Point
	var wg sync.WaitGroup

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var localPts []Point
			for j := range jobs {
				explorePEs(ctx, sp, j.pes, gridPerMapping, &localPts, &c)
			}
			mu.Lock()
			points = append(points, localPts...)
			mu.Unlock()
		}()
	}
	for _, pes := range sp.PEs {
		jobs <- job{pes}
	}
	close(jobs)
	wg.Wait()
	close(stopReporter)
	if reporterDone != nil {
		<-reporterDone
	}
	stats.Explored = c.explored.Load()
	stats.Invoked = c.invoked.Load()
	stats.Priced = c.priced.Load()
	stats.Valid = c.valid.Load()
	stats.Elapsed = time.Since(start)
	span.SetAttr(
		obs.Int64("explored", stats.Explored),
		obs.Int64("invoked", stats.Invoked),
		obs.Int64("priced", stats.Priced),
		obs.Int64("valid", stats.Valid))
	span.End()
	return points, stats
}

// explorePEs evaluates the sub-space of one PE count.
func explorePEs(ctx context.Context, sp Space, pes int, gridPerMapping int64, out *[]Point, st *exploreCounters) {
	innerRaw := int64(len(sp.BWs)) * int64(len(sp.Template.P1)) *
		int64(len(sp.Template.P2)) * gridPerMapping
	// Skip-invalid bound: even with the smallest buffers and narrowest
	// NoC, this PE count may already blow the budget.
	minArea := sp.Cost.Area(pes, 0, 0, sp.BWs[0])
	minPower := sp.Cost.Power(pes, 0, 0, sp.BWs[0])
	if minArea > sp.AreaBudgetMM2 || minPower > sp.PowerBudgetMW {
		st.explored.Add(innerRaw)
		return
	}
	// The bandwidth-axis configurations depend only on (pes, bw), so
	// build them once per PE job and batch-price them against every
	// mapping's profile below. One backing slice serves all NoC models.
	nocs := make([]noc.Model, len(sp.BWs))
	cfgs := make([]hw.Config, len(sp.BWs))
	for i, bw := range sp.BWs {
		m := noc.Bus(bw)
		m.Reduction = true
		nocs[i] = m
		cfgs[i] = hw.Config{
			Name: "dse", NumPEs: pes,
			NoCs: nocs[i : i+1 : i+1],
		}.Normalize()
	}
	var tables []energy.Table
	for _, p1 := range sp.Template.P1 {
		for _, p2 := range sp.Template.P2 {
			df := sp.Template.Build(p1, p2)
			mctx, mspan := obs.Start(ctx, "dse.mapping",
				obs.Int("pes", pes), obs.Int("p1", p1), obs.Int("p2", p2))
			// Profile once per (pes, p1, p2): the cluster walk is
			// hardware-independent, so the whole bandwidth axis below
			// re-prices the same recorded DAG — in one batch walk.
			prof, cached, err := sp.profileMapping(mctx, df, pes)
			if err != nil {
				st.explored.Add(int64(len(sp.BWs)) * gridPerMapping)
				mspan.SetAttr(obs.String("error", err.Error()))
				mspan.End()
				continue
			}
			if !cached {
				st.invoked.Add(1)
			}
			st.explored.Add(int64(len(sp.BWs)) * gridPerMapping)
			st.priced.Add(int64(len(sp.BWs)))
			rs, _ := prof.PriceBatchCtx(mctx, cfgs)
			var l1 int64
			var cands []int64
			for i, bw := range sp.BWs {
				r := rs[i]
				if r == nil {
					continue
				}
				if cands == nil {
					// The scratchpad requirements come from the recorded
					// profile, not the NoC, so the L2 candidate set and
					// the energy tables are identical across the whole
					// bandwidth axis: compute them once per mapping.
					l1 = r.L1ReqBytes()
					cands = sp.l2Candidates(r.L2ReqBytes())
					tables = tables[:0]
					for _, l2 := range cands {
						tables = append(tables, energy.TableFor(l1, l2, pes))
					}
				}
				// The L2 grid is a real axis: capacity beyond the staging
				// requirement retains tensors on-chip, trading SRAM area
				// and access energy against DRAM traffic. AtL2 re-prices
				// the same analysis per capacity, so the whole column
				// costs one engine invocation.
				for ci, l2 := range cands {
					r2 := r.AtL2(l2)
					area := sp.Cost.Area(pes, l1*int64(pes), l2, bw)
					power := sp.Cost.Power(pes, l1*int64(pes), l2, bw)
					if area > sp.AreaBudgetMM2 || power > sp.PowerBudgetMW {
						continue
					}
					eb := r2.Energy(tables[ci])
					pt := Point{
						NumPEs: pes, BW: bw, P1: p1, P2: p2,
						L1Bytes: l1, L2Bytes: l2,
						AreaMM2: area, PowerMW: power,
						Runtime:    r2.Runtime,
						Throughput: r2.Throughput(),
						EnergyPJ:   eb.Total() + sp.Cost.StaticEnergyPJ(area, r2.Runtime),
					}
					pt.EDP = pt.EnergyPJ * float64(pt.Runtime)
					*out = append(*out, pt)
					// L1 capacities above the per-PE requirement are
					// valid by dominance; count them arithmetically.
					st.valid.Add(1 + sp.l1Headroom(pes, bw, l1, l2))
				}
			}
			mspan.End()
		}
	}
}

// profileMapping builds (or fetches) the hardware-independent profile of
// one mapping. The cached flag is true only when the profile came from
// the shared cache's LRU.
func (sp Space) profileMapping(ctx context.Context, df dataflow.Dataflow, pes int) (*core.LayerProfile, bool, error) {
	if sp.Profiles != nil {
		return sp.Profiles.ProfileDataflowCtx(ctx, df, sp.Layer, pes)
	}
	spec, err := dataflow.Resolve(df, sp.Layer, pes)
	if err != nil {
		return nil, false, err
	}
	prof, err := core.ProfileCtx(ctx, spec)
	return prof, false, err
}

// l2Candidates returns the shared-scratchpad capacities to evaluate for
// a mapping whose staging requirement is req: the requirement itself plus
// every grid capacity above it.
func (sp Space) l2Candidates(req int64) []int64 {
	cands := []int64{req}
	for _, g := range sp.L2Grid {
		if g > req {
			cands = append(cands, g)
		}
	}
	return cands
}

// l1Headroom counts grid L1 capacities at or above the per-PE requirement
// that still fit the budget.
func (sp Space) l1Headroom(pes int, bw float64, l1, l2 int64) int64 {
	var n int64
	for _, g1 := range sp.L1Grid {
		if g1 < l1 {
			continue
		}
		if sp.Cost.Area(pes, g1*int64(pes), l2, bw) > sp.AreaBudgetMM2 {
			continue
		}
		if sp.Cost.Power(pes, g1*int64(pes), l2, bw) > sp.PowerBudgetMW {
			continue
		}
		n++
	}
	if n > 0 {
		n-- // the exact-requirement point itself is already counted
	}
	return n
}

// ThroughputOpt returns the highest-throughput point (ties: lower energy).
func ThroughputOpt(pts []Point) (Point, bool) {
	return pick(pts, func(a, b Point) bool {
		if a.Throughput != b.Throughput {
			return a.Throughput > b.Throughput
		}
		return a.EnergyPJ < b.EnergyPJ
	})
}

// EnergyOpt returns the lowest-energy point (ties: higher throughput).
func EnergyOpt(pts []Point) (Point, bool) {
	return pick(pts, func(a, b Point) bool {
		if a.EnergyPJ != b.EnergyPJ {
			return a.EnergyPJ < b.EnergyPJ
		}
		return a.Throughput > b.Throughput
	})
}

// EDPOpt returns the lowest energy-delay-product point.
func EDPOpt(pts []Point) (Point, bool) {
	return pick(pts, func(a, b Point) bool { return a.EDP < b.EDP })
}

func pick(pts []Point, better func(a, b Point) bool) (Point, bool) {
	if len(pts) == 0 {
		return Point{}, false
	}
	best := pts[0]
	for _, p := range pts[1:] {
		if better(p, best) {
			best = p
		}
	}
	return best, true
}

// Pareto returns the throughput/energy Pareto frontier: points not
// dominated by any other (higher-or-equal throughput and lower-or-equal
// energy, strictly better in one). Survivors keep their input order.
//
// Sort-and-scan, O(n log n): visiting throughput groups in descending
// order, a point survives iff it has the minimum energy of its own
// throughput group and beats (strictly) the best energy seen in every
// higher-throughput group — anything else has a dominator either beside
// it or above it.
func Pareto(pts []Point) []Point {
	if len(pts) == 0 {
		return nil
	}
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := pts[idx[a]], pts[idx[b]]
		if pa.Throughput != pb.Throughput {
			return pa.Throughput > pb.Throughput
		}
		return pa.EnergyPJ < pb.EnergyPJ
	})
	keep := make([]bool, len(pts))
	bestE := math.Inf(1)
	for i := 0; i < len(idx); {
		j := i
		groupMin := math.Inf(1)
		for ; j < len(idx) && pts[idx[j]].Throughput == pts[idx[i]].Throughput; j++ {
			if e := pts[idx[j]].EnergyPJ; e < groupMin {
				groupMin = e
			}
		}
		if groupMin < bestE {
			// Every copy of the group minimum survives: equal points do
			// not dominate each other.
			for k := i; k < j; k++ {
				if pts[idx[k]].EnergyPJ == groupMin {
					keep[idx[k]] = true
				}
			}
			bestE = groupMin
		}
		i = j
	}
	var front []Point
	for i, p := range pts {
		if keep[i] {
			front = append(front, p)
		}
	}
	return front
}
