package dse

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/dataflow"
	"repro/internal/dataflows"
	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/netsched"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// FusionSpace is a bounded sweep over graph-level schedules of one
// network: the (L2 budget x fusion granularity) plane, each point
// priced by the netsched graph scheduler. Where Space asks "which
// hardware and mapping run this layer best", FusionSpace asks "which
// partitioning of the network DAG makes the off-chip traffic smallest
// on hardware already fixed".
type FusionSpace struct {
	Model models.Model
	Cfg   hw.Config
	// Dataflow names a Table 3 template applied to every layer; empty
	// auto-tunes per layer.
	Dataflow string

	// L2Grid lists the retention budgets to sweep (netsched's L2Bytes
	// axis; 0 is the no-fusion sentinel). Nil uses DefaultFusionL2Grid.
	L2Grid []int64
	// MaxGroupLayers lists the fusion-subgraph size caps to sweep
	// (1 = singleton groups, retention only). Nil uses {1, 2, 4, 8}.
	MaxGroupLayers []int

	// Workers caps the worker pool (default: one per point, at most 8).
	Workers int
	// Ctx carries cancellation and the obs span tree.
	Ctx context.Context
}

// DefaultFusionL2Grid is the budget ladder swept when L2Grid is nil:
// the sentinel plus a geometric 32 KiB..4 MiB ladder.
func DefaultFusionL2Grid() []int64 {
	return append([]int64{0}, DefaultGrid(32<<10, 4<<20, 2)...)
}

// FusionPoint is one priced partitioning of the sweep.
type FusionPoint struct {
	L2Bytes        int64
	MaxGroupLayers int

	// FusedGroups counts subgraphs with two or more layers.
	FusedGroups int
	// DRAMTraffic is the fused schedule's claimed off-chip element
	// total; BaselineDRAM prices the same budget without fusion.
	DRAMTraffic  int64
	BaselineDRAM int64
	DRAMSaved    int64
	ActTraffic   int64
	BaselineAct  int64
	TotalCycles  int64
	EnergyPJ     float64
}

// SavedFrac is the fused schedule's DRAM saving as a fraction of the
// per-layer baseline (0 when the baseline is empty).
func (p FusionPoint) SavedFrac() float64 {
	if p.BaselineDRAM <= 0 {
		return 0
	}
	return float64(p.DRAMSaved) / float64(p.BaselineDRAM)
}

// FusionStats counts a fusion sweep.
type FusionStats struct {
	// Raw is the full grid size; Valid the points the scheduler priced
	// (a point drops out only when no layer maps under the template).
	Raw     int64
	Valid   int64
	Elapsed time.Duration
}

func (sp FusionSpace) withDefaults() FusionSpace {
	if sp.L2Grid == nil {
		sp.L2Grid = DefaultFusionL2Grid()
	}
	if sp.MaxGroupLayers == nil {
		sp.MaxGroupLayers = []int{1, 2, 4, 8}
	}
	if sp.Workers <= 0 {
		sp.Workers = min(8, len(sp.L2Grid)*len(sp.MaxGroupLayers))
	}
	if sp.Ctx == nil {
		sp.Ctx = context.Background()
	}
	return sp
}

// fusionOptions resolves the template name to netsched options.
func fusionOptions(name string) (netsched.Options, error) {
	if name == "" {
		return netsched.Options{}, nil
	}
	known := false
	for _, n := range dataflows.Names {
		if n == name {
			known = true
			break
		}
	}
	if !known {
		return netsched.Options{}, fmt.Errorf("dse: unknown fusion dataflow %q (have %v)", name, dataflows.Names)
	}
	df := dataflows.Get(name)
	return netsched.Options{Dataflow: func(tensor.Layer) (dataflow.Dataflow, bool) {
		return df, true
	}}, nil
}

// ExploreFusion sweeps the fusion plane and returns every priced point
// in canonical (L2Bytes, MaxGroupLayers) order. The hardware is fixed
// across the sweep; only the scheduler's budget and granularity move,
// so points are directly comparable. An error means the sweep itself
// is malformed (empty model, unknown template, bad DAG) — individual
// unpriceable points are skipped and reflected in Stats.Valid.
func ExploreFusion(sp FusionSpace) ([]FusionPoint, FusionStats, error) {
	sp = sp.withDefaults()
	if len(sp.Model.Layers) == 0 {
		return nil, FusionStats{}, errors.New("dse: fusion sweep needs a model with layers")
	}
	if err := sp.Model.ValidateEdges(); err != nil {
		return nil, FusionStats{}, err
	}
	base, err := fusionOptions(sp.Dataflow)
	if err != nil {
		return nil, FusionStats{}, err
	}
	for _, l2 := range sp.L2Grid {
		if l2 < 0 {
			return nil, FusionStats{}, fmt.Errorf("dse: negative L2 budget %d in fusion grid", l2)
		}
	}

	type cell struct {
		l2  int64
		mgl int
	}
	var grid []cell
	for _, l2 := range sp.L2Grid {
		for _, mgl := range sp.MaxGroupLayers {
			grid = append(grid, cell{l2, mgl})
		}
	}

	start := time.Now()
	ctx, span := obs.Start(sp.Ctx, "dse.fusion",
		obs.String("model", sp.Model.Name), obs.Int64("raw", int64(len(grid))))
	defer span.End()

	points := make([]*FusionPoint, len(grid))
	var wg sync.WaitGroup
	sem := make(chan struct{}, sp.Workers)
	for i, c := range grid {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, c cell) {
			defer wg.Done()
			defer func() { <-sem }()
			opt := base
			opt.L2Bytes = c.l2
			s, err := netsched.RunFused(sp.Model, sp.Cfg, netsched.FuseOptions{
				Options:        opt,
				MaxGroupLayers: c.mgl,
			})
			if err != nil {
				return
			}
			points[i] = &FusionPoint{
				L2Bytes:        c.l2,
				MaxGroupLayers: c.mgl,
				FusedGroups:    s.FusedGroups(),
				DRAMTraffic:    s.DRAMTraffic,
				BaselineDRAM:   s.BaselineDRAM,
				DRAMSaved:      s.DRAMSaved,
				ActTraffic:     s.ActTraffic,
				BaselineAct:    s.BaselineAct,
				TotalCycles:    s.TotalCycles,
				EnergyPJ:       s.EnergyPJ,
			}
		}(i, c)
	}
	wg.Wait()

	var out []FusionPoint
	for _, p := range points {
		if p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].L2Bytes != out[j].L2Bytes {
			return out[i].L2Bytes < out[j].L2Bytes
		}
		return out[i].MaxGroupLayers < out[j].MaxGroupLayers
	})
	st := FusionStats{
		Raw:     int64(len(grid)),
		Valid:   int64(len(out)),
		Elapsed: time.Since(start),
	}
	span.SetAttr(obs.Int64("valid", st.Valid))
	return out, st, ctx.Err()
}

// BestFusion picks the point with the least DRAM traffic, breaking
// ties toward the smaller budget and then the coarser cap (fewer fused
// layers per group means less scheduling risk for the same traffic).
func BestFusion(points []FusionPoint) (FusionPoint, bool) {
	if len(points) == 0 {
		return FusionPoint{}, false
	}
	best := points[0]
	for _, p := range points[1:] {
		switch {
		case p.DRAMTraffic < best.DRAMTraffic:
			best = p
		case p.DRAMTraffic == best.DRAMTraffic && p.L2Bytes < best.L2Bytes:
			best = p
		case p.DRAMTraffic == best.DRAMTraffic && p.L2Bytes == best.L2Bytes &&
			p.MaxGroupLayers < best.MaxGroupLayers:
			best = p
		}
	}
	return best, true
}

// PartitionFusionGrid splits a budget grid into at most target
// contiguous, non-empty, disjoint chunks covering every budget exactly
// once — the fleet coordinator's shard unit for fusion sweeps (the
// granularity axis stays whole per shard; partitionings at one budget
// share the scheduler's member re-tunes).
func PartitionFusionGrid(grid []int64, target int) [][]int64 {
	if len(grid) == 0 {
		return nil
	}
	if target < 1 {
		target = 1
	}
	if target > len(grid) {
		target = len(grid)
	}
	var chunks [][]int64
	for i := 0; i < target; i++ {
		lo := i * len(grid) / target
		hi := (i + 1) * len(grid) / target
		chunks = append(chunks, grid[lo:hi])
	}
	return chunks
}
