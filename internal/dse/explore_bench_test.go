package dse

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/energy"
	"repro/internal/hw"
	"repro/internal/noc"
)

// TestExploreProfileOncePerMapping checks the profile/price accounting:
// every resolvable mapping is profiled exactly once and priced once per
// bandwidth point.
func TestExploreProfileOncePerMapping(t *testing.T) {
	sp := smallSpace()
	_, stats := Explore(sp)
	if stats.Invoked == 0 {
		t.Fatal("no mappings profiled")
	}
	wantPriced := stats.Invoked * int64(len(sp.BWs))
	if stats.Priced != wantPriced {
		t.Errorf("Priced = %d, want Invoked(%d) × BWs(%d) = %d",
			stats.Priced, stats.Invoked, len(sp.BWs), wantPriced)
	}
}

// TestExploreSharedProfileCache runs the same space twice through one
// cache: the second run must find every profile resident and perform no
// walks, while producing identical design points.
func TestExploreSharedProfileCache(t *testing.T) {
	sp := smallSpace()
	sp.Workers = 1 // deterministic point order, so the float energy sum is exact
	sp.Profiles = core.NewProfileCache(256)
	pts1, stats1 := Explore(sp)
	pts2, stats2 := Explore(sp)
	if stats1.Invoked == 0 {
		t.Fatal("first run profiled nothing")
	}
	if stats2.Invoked != 0 {
		t.Errorf("second run re-profiled %d mappings despite warm cache", stats2.Invoked)
	}
	if stats2.Priced != stats1.Priced {
		t.Errorf("pricing count changed across runs: %d vs %d", stats1.Priced, stats2.Priced)
	}
	if len(pts1) != len(pts2) {
		t.Fatalf("point count changed across runs: %d vs %d", len(pts1), len(pts2))
	}
	sum := func(pts []Point) (r int64, e float64) {
		for _, p := range pts {
			r += p.Runtime
			e += p.EnergyPJ
		}
		return
	}
	r1, e1 := sum(pts1)
	r2, e2 := sum(pts2)
	if r1 != r2 || e1 != e2 {
		t.Errorf("cached run produced different designs: runtime %d/%d energy %g/%g", r1, r2, e1, e2)
	}
}

// naiveExplorePEs is the pre-refactor inner loop, kept as the benchmark
// baseline: one full core.Analyze per bandwidth point instead of one
// profile re-priced across the axis.
func naiveExplorePEs(sp Space, pes int, gridPerMapping int64, out *[]Point, st *Stats) {
	innerRaw := int64(len(sp.BWs)) * int64(len(sp.Template.P1)) *
		int64(len(sp.Template.P2)) * gridPerMapping
	minArea := sp.Cost.Area(pes, 0, 0, sp.BWs[0])
	minPower := sp.Cost.Power(pes, 0, 0, sp.BWs[0])
	if minArea > sp.AreaBudgetMM2 || minPower > sp.PowerBudgetMW {
		st.Explored += innerRaw
		return
	}
	for _, p1 := range sp.Template.P1 {
		for _, p2 := range sp.Template.P2 {
			df := sp.Template.Build(p1, p2)
			spec, err := dataflow.Resolve(df, sp.Layer, pes)
			if err != nil {
				st.Explored += int64(len(sp.BWs)) * gridPerMapping
				continue
			}
			for _, bw := range sp.BWs {
				st.Explored += gridPerMapping
				m := noc.Bus(bw)
				m.Reduction = true
				cfg := hw.Config{Name: "dse", NumPEs: pes, NoCs: []noc.Model{m}}.Normalize()
				st.Invoked++
				r, err := core.Analyze(spec, cfg)
				if err != nil {
					continue
				}
				l1 := r.L1ReqBytes()
				for _, l2 := range sp.l2Candidates(r.L2ReqBytes()) {
					r2 := r.WithL2(l2)
					area := sp.Cost.Area(pes, l1*int64(pes), l2, bw)
					power := sp.Cost.Power(pes, l1*int64(pes), l2, bw)
					if area > sp.AreaBudgetMM2 || power > sp.PowerBudgetMW {
						continue
					}
					eb := r2.Energy(energy.TableFor(l1, l2, pes))
					pt := Point{
						NumPEs: pes, BW: bw, P1: p1, P2: p2,
						L1Bytes: l1, L2Bytes: l2,
						AreaMM2: area, PowerMW: power,
						Runtime:    r2.Runtime,
						Throughput: r2.Throughput(),
						EnergyPJ:   eb.Total() + sp.Cost.StaticEnergyPJ(area, r2.Runtime),
					}
					pt.EDP = pt.EnergyPJ * float64(pt.Runtime)
					*out = append(*out, pt)
					st.Valid += 1 + sp.l1Headroom(pes, bw, l1, l2)
				}
			}
		}
	}
}

// benchSpace is a single-threaded space with a wide bandwidth axis (16
// points), the workload the profile/price split targets.
func benchSpace() Space {
	sp := smallSpace()
	sp.Workers = 1
	sp.PEs = []int{64, 256}
	sp.BWs = []float64{1, 1.5, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192}
	return sp
}

// TestNaiveExploreAgrees pins the baseline to the optimized path: same
// points, same explored count, so the benchmark compares equal work.
func TestNaiveExploreAgrees(t *testing.T) {
	sp := benchSpace()
	gridPerMapping := int64(len(sp.L1Grid)) * int64(len(sp.L2Grid))
	var naivePts []Point
	var naiveStats Stats
	for _, pes := range sp.PEs {
		naiveExplorePEs(sp, pes, gridPerMapping, &naivePts, &naiveStats)
	}
	pts, stats := Explore(sp)
	if len(pts) != len(naivePts) {
		t.Fatalf("point count: optimized %d, naive %d", len(pts), len(naivePts))
	}
	if stats.Explored != naiveStats.Explored || stats.Valid != naiveStats.Valid {
		t.Fatalf("stats diverge: optimized %+v, naive %+v", stats, naiveStats)
	}
	for i := range pts {
		if pts[i] != naivePts[i] {
			t.Fatalf("point %d diverges:\noptimized %+v\nnaive     %+v", i, pts[i], naivePts[i])
		}
	}
}

// BenchmarkExplore measures explored designs/sec on a 16-point bandwidth
// axis, three ways:
//
//   - ProfileOnce: the production shape — a warm shared ProfileCache (what
//     serve and the fleet run with) and one PriceBatch walk per mapping,
//     so each op measures the steady-state batch-pricing path.
//   - ColdProfile: every mapping profiled fresh each op (no cache), the
//     honest cold-start number including the cluster walks.
//   - AnalyzePerPoint: the pre-refactor loop, one full core.Analyze per
//     bandwidth point.
func BenchmarkExplore(b *testing.B) {
	sp := benchSpace()
	b.Run("ProfileOnce", func(b *testing.B) {
		warm := sp
		warm.Profiles = core.NewProfileCache(256)
		Explore(warm) // populate the cache; ops below measure steady state
		b.ResetTimer()
		var explored int64
		for i := 0; i < b.N; i++ {
			_, stats := Explore(warm)
			explored += stats.Explored
		}
		b.ReportMetric(float64(explored)/b.Elapsed().Seconds(), "designs/sec")
	})
	b.Run("ColdProfile", func(b *testing.B) {
		var explored int64
		for i := 0; i < b.N; i++ {
			_, stats := Explore(sp)
			explored += stats.Explored
		}
		b.ReportMetric(float64(explored)/b.Elapsed().Seconds(), "designs/sec")
	})
	b.Run("AnalyzePerPoint", func(b *testing.B) {
		gridPerMapping := int64(len(sp.L1Grid)) * int64(len(sp.L2Grid))
		var explored int64
		for i := 0; i < b.N; i++ {
			var pts []Point
			var stats Stats
			for _, pes := range sp.PEs {
				naiveExplorePEs(sp, pes, gridPerMapping, &pts, &stats)
			}
			explored += stats.Explored
		}
		b.ReportMetric(float64(explored)/b.Elapsed().Seconds(), "designs/sec")
	})
}
