package dse

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/models"
)

func fusionSpace() FusionSpace {
	cfg := hw.Accel256()
	cfg.L2Size = 256 << 10
	return FusionSpace{
		Model:          models.GoogLeNet(),
		Cfg:            cfg.Normalize(),
		Dataflow:       "KC-P",
		L2Grid:         []int64{0, 256 << 10},
		MaxGroupLayers: []int{1, 8},
	}
}

// TestExploreFusionGoogLeNet sweeps the fusion plane's four corners:
// the sentinel must collapse to the per-layer sum, granularity 1 must
// fuse nothing, and the fused corner must beat its own baseline.
func TestExploreFusionGoogLeNet(t *testing.T) {
	points, stats, err := ExploreFusion(fusionSpace())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Raw != 4 || stats.Valid != 4 || len(points) != 4 {
		t.Fatalf("stats = %+v with %d points, want 4/4", stats, len(points))
	}
	for i, p := range points[1:] {
		prev := points[i]
		if prev.L2Bytes > p.L2Bytes ||
			(prev.L2Bytes == p.L2Bytes && prev.MaxGroupLayers >= p.MaxGroupLayers) {
			t.Fatalf("points out of canonical order at %d: %+v then %+v", i, prev, p)
		}
	}
	for _, p := range points {
		switch {
		case p.L2Bytes == 0:
			if p.DRAMTraffic != p.BaselineDRAM || p.FusedGroups != 0 || p.DRAMSaved != 0 {
				t.Fatalf("sentinel point fused: %+v", p)
			}
		case p.MaxGroupLayers == 1:
			if p.FusedGroups != 0 {
				t.Fatalf("granularity-1 point fused %d groups", p.FusedGroups)
			}
		default:
			if p.FusedGroups == 0 || p.DRAMSaved <= 0 {
				t.Fatalf("fused corner saved nothing: %+v", p)
			}
			if got := p.SavedFrac(); got <= 0 || got >= 1 {
				t.Fatalf("SavedFrac = %v", got)
			}
		}
	}
	best, ok := BestFusion(points)
	if !ok {
		t.Fatal("BestFusion found nothing")
	}
	for _, p := range points {
		if p.DRAMTraffic < best.DRAMTraffic {
			t.Fatalf("best %+v beaten by %+v", best, p)
		}
	}
}

// TestExploreFusionErrors pins the sweep-level failure modes.
func TestExploreFusionErrors(t *testing.T) {
	sp := fusionSpace()
	sp.Dataflow = "NOPE-P"
	if _, _, err := ExploreFusion(sp); err == nil {
		t.Fatal("unknown dataflow accepted")
	}
	sp = fusionSpace()
	sp.L2Grid = []int64{-1}
	if _, _, err := ExploreFusion(sp); err == nil {
		t.Fatal("negative budget accepted")
	}
	sp = fusionSpace()
	sp.Model = models.Model{Name: "empty"}
	if _, _, err := ExploreFusion(sp); err == nil {
		t.Fatal("empty model accepted")
	}
}

// TestPartitionFusionGrid checks the shard cut: contiguous, disjoint,
// non-empty, covering, for every target from degenerate to oversize.
func TestPartitionFusionGrid(t *testing.T) {
	grid := []int64{0, 1, 2, 3, 4, 5, 6}
	for _, target := range []int{-1, 1, 2, 3, 7, 100} {
		chunks := PartitionFusionGrid(grid, target)
		want := target
		if want < 1 {
			want = 1
		}
		if want > len(grid) {
			want = len(grid)
		}
		if len(chunks) != want {
			t.Fatalf("target %d: %d chunks, want %d", target, len(chunks), want)
		}
		var flat []int64
		for _, c := range chunks {
			if len(c) == 0 {
				t.Fatalf("target %d: empty chunk", target)
			}
			flat = append(flat, c...)
		}
		if len(flat) != len(grid) {
			t.Fatalf("target %d: cover has %d entries", target, len(flat))
		}
		for i := range flat {
			if flat[i] != grid[i] {
				t.Fatalf("target %d: cover reorders: %v", target, flat)
			}
		}
	}
	if got := PartitionFusionGrid(nil, 3); got != nil {
		t.Fatalf("nil grid gave %v", got)
	}
}
