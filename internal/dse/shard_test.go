package dse

import (
	"math/rand"
	"reflect"
	"testing"
)

// coverCheck verifies the partition invariants: no empty shards, no
// overlapping (pe, p1) pairs, and no dropped pairs. It reports the
// shard count.
func coverCheck(t *testing.T, pes, p1 []int, shards []Shard) int {
	t.Helper()
	type pair struct{ pe, p1 int }
	seen := map[pair]int{}
	for i, sh := range shards {
		if sh.Points() == 0 {
			t.Fatalf("shard %d is empty: %+v", i, sh)
		}
		if sh.Index != i || sh.Of != len(shards) {
			t.Fatalf("shard %d mislabeled: Index=%d Of=%d want %d/%d",
				i, sh.Index, sh.Of, i, len(shards))
		}
		for _, pe := range sh.PEs {
			for _, k := range sh.P1 {
				p := pair{pe, k}
				if prev, dup := seen[p]; dup {
					t.Fatalf("pair (%d,%d) covered by shards %d and %d", pe, k, prev, i)
				}
				seen[p] = i
			}
		}
	}
	if want := len(pes) * len(p1); len(seen) != want {
		t.Fatalf("partition covers %d of %d pairs", len(seen), want)
	}
	return len(shards)
}

func TestPartitionCovers(t *testing.T) {
	pes := []int{64, 128, 256, 512}
	p1 := []int{8, 16, 32, 64, 128}
	for _, target := range []int{-3, 0, 1, 2, 3, 4, 5, 7, 10, 19, 20, 21, 1000} {
		shards := Partition(pes, p1, target)
		n := coverCheck(t, pes, p1, shards)
		if target >= 1 && target <= len(pes)*len(p1) && n > 0 {
			// The shard count lands within one PE-row of the target: the
			// per-PE knob split uses ceil division.
			if n < min(target, len(pes)) {
				t.Errorf("target %d produced only %d shards", target, n)
			}
		}
		// Single-PE granularity whenever the target asks for at least one
		// shard per PE count — the routing affinity contract.
		if target >= len(pes)*len(p1) {
			for _, sh := range shards {
				if len(sh.PEs) != 1 || len(sh.P1) != 1 {
					t.Fatalf("max target left a coarse shard: %+v", sh)
				}
			}
		}
	}
}

func TestPartitionEmptyAxes(t *testing.T) {
	if s := Partition(nil, []int{1}, 4); s != nil {
		t.Fatalf("Partition with no PEs = %+v, want nil", s)
	}
	if s := Partition([]int{1}, nil, 4); s != nil {
		t.Fatalf("Partition with no knobs = %+v, want nil", s)
	}
}

// TestPartitionSinglePEAffinity pins the routing contract: once target
// reaches the PE-axis length every shard spans exactly one PE count.
func TestPartitionSinglePEAffinity(t *testing.T) {
	pes := []int{16, 32, 48, 64, 80, 96}
	p1 := []int{1, 2, 4}
	for target := len(pes); target <= len(pes)*len(p1); target++ {
		for _, sh := range Partition(pes, p1, target) {
			if len(sh.PEs) != 1 {
				t.Fatalf("target %d: shard spans %d PE counts: %+v", target, len(sh.PEs), sh)
			}
		}
	}
}

// FuzzPartition drives the partitioner over arbitrary axis lengths and
// targets, checking the no-empty / no-overlap / no-drop invariants.
func FuzzPartition(f *testing.F) {
	f.Add(uint8(4), uint8(5), 8)
	f.Add(uint8(1), uint8(1), 1)
	f.Add(uint8(64), uint8(7), 47)
	f.Add(uint8(3), uint8(9), -2)
	f.Add(uint8(200), uint8(200), 1<<20)
	f.Fuzz(func(t *testing.T, npes, np1 uint8, target int) {
		pes := make([]int, npes)
		for i := range pes {
			pes[i] = 16 * (i + 1)
		}
		p1 := make([]int, np1)
		for i := range p1 {
			p1[i] = 3*i + 1
		}
		shards := Partition(pes, p1, target)
		if len(pes) == 0 || len(p1) == 0 {
			if shards != nil {
				t.Fatalf("empty axes produced shards: %+v", shards)
			}
			return
		}
		type pair struct{ pe, p1 int }
		seen := map[pair]bool{}
		for _, sh := range shards {
			if sh.Points() == 0 {
				t.Fatalf("empty shard: %+v", sh)
			}
			for _, pe := range sh.PEs {
				for _, k := range sh.P1 {
					p := pair{pe, k}
					if seen[p] {
						t.Fatalf("pair (%d,%d) covered twice", pe, k)
					}
					seen[p] = true
				}
			}
		}
		if want := len(pes) * len(p1); len(seen) != want {
			t.Fatalf("covered %d of %d pairs", len(seen), want)
		}
	})
}

// TestMergeParetoMatchesOracle is the merge-of-shards property test:
// folding random shard splits through MergePareto must equal both the
// one-shot Pareto of the concatenation (exactly, order included) and
// the naive O(n²) oracle.
func TestMergeParetoMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(96)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{
				NumPEs:     i,
				Throughput: float64(rng.Intn(9)),
				EnergyPJ:   float64(rng.Intn(9)),
			}
		}
		// Split into 1..6 contiguous shards and fold.
		var front []Point
		nshards := 1 + rng.Intn(6)
		lo := 0
		for s := 0; s < nshards; s++ {
			hi := lo + rng.Intn(n-lo+1)
			if s == nshards-1 {
				hi = n
			}
			front = MergePareto(front, pts[lo:hi])
			lo = hi
		}
		if want := Pareto(pts); !reflect.DeepEqual(front, want) {
			t.Fatalf("trial %d: folded merge != Pareto of concatenation\ngot:  %+v\nwant: %+v",
				trial, front, want)
		}
		got := map[Point]int{}
		for _, p := range front {
			got[p]++
		}
		want := map[Point]int{}
		for _, p := range naivePareto(pts) {
			want[p]++
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: merged front != naive oracle\ngot:  %+v\nwant: %+v",
				trial, front, naivePareto(pts))
		}
	}
}

// TestMergeParetoEmpty pins the identity edges.
func TestMergeParetoEmpty(t *testing.T) {
	front := []Point{{Throughput: 2, EnergyPJ: 1}}
	if got := MergePareto(front, nil); !reflect.DeepEqual(got, front) {
		t.Fatalf("MergePareto(front, nil) = %+v", got)
	}
	pts := []Point{{Throughput: 1, EnergyPJ: 2}, {Throughput: 3, EnergyPJ: 1}}
	if got := MergePareto(nil, pts); !reflect.DeepEqual(got, Pareto(pts)) {
		t.Fatalf("MergePareto(nil, pts) = %+v", got)
	}
}

func TestSortPointsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mk := func() []Point {
		pts := make([]Point, 40)
		for i := range pts {
			pts[i] = Point{
				NumPEs: 16 * (1 + rng.Intn(4)), P1: 1 << rng.Intn(4),
				P2: 1 + rng.Intn(3), BW: float64(1 + rng.Intn(5)),
				L1Bytes: int64(64 << rng.Intn(3)), L2Bytes: int64(4096 << rng.Intn(3)),
			}
		}
		return pts
	}
	a := mk()
	b := append([]Point(nil), a...)
	rng.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
	SortPoints(a)
	SortPoints(b)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("SortPoints is not a canonical order")
	}
}
