package dse

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dataflows"
	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/obs"
)

func smallSpace() Space {
	vgg := models.VGG16()
	conv11, _ := vgg.Find("CONV11")
	return Space{
		Layer: conv11.Layer,
		Template: Template{
			Name:  "KC-P",
			Build: dataflows.KCPSized,
			P1:    []int{16, 32, 64},
			P2:    []int{8, 16},
		},
		PEs:           []int{64, 128, 256},
		BWs:           []float64{8, 16, 32},
		L1Grid:        DefaultGrid(64, 1<<14, 2),
		L2Grid:        DefaultGrid(1<<12, 1<<21, 2),
		AreaBudgetMM2: 16,
		PowerBudgetMW: 450,
		Cost:          hw.Default28nm(),
		Workers:       2,
	}
}

func TestExplore(t *testing.T) {
	pts, stats := Explore(smallSpace())
	if len(pts) == 0 {
		t.Fatal("no valid designs found")
	}
	if stats.Valid < int64(len(pts)) {
		t.Errorf("stats.Valid %d < evaluated points %d", stats.Valid, len(pts))
	}
	if stats.Explored > stats.Raw {
		t.Errorf("explored %d > raw %d", stats.Explored, stats.Raw)
	}
	if stats.Invoked == 0 || stats.Invoked > stats.Explored {
		t.Errorf("invoked %d out of range (explored %d)", stats.Invoked, stats.Explored)
	}
	for _, p := range pts {
		if p.AreaMM2 > 16 || p.PowerMW > 450 {
			t.Fatalf("budget violated: %+v", p)
		}
		if p.Throughput <= 0 || p.EnergyPJ <= 0 {
			t.Fatalf("degenerate point: %+v", p)
		}
	}
}

func TestOptima(t *testing.T) {
	pts, _ := Explore(smallSpace())
	thr, ok1 := ThroughputOpt(pts)
	eng, ok2 := EnergyOpt(pts)
	edp, ok3 := EDPOpt(pts)
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("optima not found")
	}
	if eng.EnergyPJ > thr.EnergyPJ {
		t.Errorf("energy-opt %v pJ worse than throughput-opt %v pJ", eng.EnergyPJ, thr.EnergyPJ)
	}
	if thr.Throughput < eng.Throughput {
		t.Errorf("throughput-opt slower than energy-opt")
	}
	if edp.EDP > thr.EDP || edp.EDP > eng.EDP {
		t.Errorf("EDP-opt not minimal: %v vs %v / %v", edp.EDP, thr.EDP, eng.EDP)
	}
}

func TestPareto(t *testing.T) {
	pts, _ := Explore(smallSpace())
	front := Pareto(pts)
	if len(front) == 0 || len(front) > len(pts) {
		t.Fatalf("frontier size %d of %d", len(front), len(pts))
	}
	// Every non-frontier point must be dominated by some frontier point.
	inFront := map[Point]bool{}
	for _, p := range front {
		inFront[p] = true
	}
	for _, p := range pts {
		if inFront[p] {
			continue
		}
		dominated := false
		for _, q := range front {
			if q.Throughput >= p.Throughput && q.EnergyPJ <= p.EnergyPJ {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Fatalf("point %+v neither on frontier nor dominated", p)
		}
	}
}

func TestSkipInvalidPruning(t *testing.T) {
	sp := smallSpace()
	sp.PEs = []int{1 << 20} // absurd: must be pruned without invocations
	pts, stats := Explore(sp)
	if len(pts) != 0 {
		t.Fatal("invalid PEs produced designs")
	}
	if stats.Invoked != 0 {
		t.Errorf("pruning failed: %d invocations", stats.Invoked)
	}
	if stats.Explored != stats.Raw {
		t.Errorf("pruned sub-space not counted: explored %d raw %d", stats.Explored, stats.Raw)
	}
}

// TestL2AxisTradesEnergy: within one mapping, growing L2 along the grid
// must never increase DRAM traffic, and some growth must pay off in
// energy (the retention trade the DSE explores).
func TestL2AxisTradesEnergy(t *testing.T) {
	sp := smallSpace()
	pts, _ := Explore(sp)
	// Group points by identical mapping+hardware except L2.
	type key struct {
		pes    int
		bw     float64
		p1, p2 int
	}
	groups := map[key][]Point{}
	for _, p := range pts {
		k := key{p.NumPEs, p.BW, p.P1, p.P2}
		groups[k] = append(groups[k], p)
	}
	multi := 0
	for _, g := range groups {
		if len(g) < 2 {
			continue
		}
		multi++
		// Runtime must be non-increasing in L2 (DRAM bound can only relax).
		for i := range g {
			for j := range g {
				if g[i].L2Bytes < g[j].L2Bytes && g[i].Runtime < g[j].Runtime {
					t.Fatalf("bigger L2 slowed the design: %+v vs %+v", g[i], g[j])
				}
			}
		}
	}
	if multi == 0 {
		t.Fatal("no mapping explored multiple L2 capacities")
	}
}

// TestExploreProgress checks that the live reporter fires and that its
// final update matches the returned stats.
func TestExploreProgress(t *testing.T) {
	sp := smallSpace()
	var mu sync.Mutex
	var last Progress
	calls := 0
	sp.ProgressEvery = time.Millisecond
	sp.Progress = func(p Progress) {
		mu.Lock()
		last, calls = p, calls+1
		mu.Unlock()
	}
	_, stats := Explore(sp)
	mu.Lock()
	defer mu.Unlock()
	if calls == 0 {
		t.Fatal("progress reporter never fired")
	}
	// The reporter always delivers one final update after the workers
	// finish, so the last snapshot equals the settled totals.
	if last.Explored != stats.Explored || last.Priced != stats.Priced ||
		last.Valid != stats.Valid || last.Invoked != stats.Invoked {
		t.Errorf("final progress %+v != stats %+v", last, stats)
	}
	if last.Rate() <= 0 {
		t.Errorf("final rate %v, want > 0", last.Rate())
	}
}

// TestExploreTraced runs a sweep under an obs recorder and checks the
// span tree: one dse.explore root with per-mapping children that carry
// the worker's knob attributes.
func TestExploreTraced(t *testing.T) {
	sp := smallSpace()
	rec := obs.NewRecorder()
	sp.Ctx = obs.WithRecorder(context.Background(), rec)
	_, stats := Explore(sp)

	spans := rec.Snapshot()
	var root *obs.SpanRecord
	mappings := 0
	for i := range spans {
		switch spans[i].Name {
		case "dse.explore":
			root = &spans[i]
		case "dse.mapping":
			mappings++
		}
	}
	if root == nil {
		t.Fatal("no dse.explore span recorded")
	}
	if got, ok := root.Attr("explored"); !ok || got != fmt.Sprint(stats.Explored) {
		t.Errorf("dse.explore explored attr = %q (ok=%v), want %d", got, ok, stats.Explored)
	}
	if int64(mappings) != stats.Invoked {
		t.Errorf("%d dse.mapping spans, want one per invocation (%d)", mappings, stats.Invoked)
	}
	for _, s := range spans {
		if s.Name != "dse.mapping" {
			continue
		}
		if s.Parent != root.ID || s.Track != root.Track {
			t.Fatalf("mapping span not parented to explore root: %+v", s)
		}
		if _, ok := s.Attr("pes"); !ok {
			t.Fatalf("mapping span missing pes attr: %+v", s)
		}
	}
}

// TestExploreBatchSpanShape pins the tracing cost of the batch pricing
// path: each mapping emits exactly one core.price_batch span covering
// the whole bandwidth axis (points == len(BWs)) and zero per-point
// core.price spans — the span count is O(mappings), not O(designs), so
// tracing overhead stays within the ≤3% budget by construction.
func TestExploreBatchSpanShape(t *testing.T) {
	sp := smallSpace()
	rec := obs.NewRecorder()
	sp.Ctx = obs.WithRecorder(context.Background(), rec)
	_, stats := Explore(sp)

	batchSpans, priceSpans := 0, 0
	for _, s := range rec.Snapshot() {
		switch s.Name {
		case "core.price_batch":
			batchSpans++
			if got, ok := s.Attr("points"); !ok || got != fmt.Sprint(len(sp.BWs)) {
				t.Errorf("core.price_batch points attr = %q (ok=%v), want %d", got, ok, len(sp.BWs))
			}
		case "core.price":
			priceSpans++
		}
	}
	if int64(batchSpans) != stats.Invoked {
		t.Errorf("%d core.price_batch spans, want one per mapping (%d)", batchSpans, stats.Invoked)
	}
	if priceSpans != 0 {
		t.Errorf("%d per-point core.price spans leaked into the batch path, want 0", priceSpans)
	}
	if stats.Priced != stats.Invoked*int64(len(sp.BWs)) {
		t.Errorf("Priced = %d, want Invoked(%d) × BWs(%d)", stats.Priced, stats.Invoked, len(sp.BWs))
	}
}
