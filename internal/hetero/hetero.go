// Package hetero evaluates heterogeneous accelerators: several
// sub-accelerators with different dataflow styles sharing one chip, the
// design point the paper's Section 5.1 motivates ("heterogeneous
// accelerators that employ multiple sub-accelerators with various
// dataflow styles in a single DNN accelerator chip").
//
// Each layer is assigned to the sub-accelerator whose dataflow suits it
// best. Two execution disciplines are priced:
//
//   - Sequential: one inference at a time; a layer's latency is its
//     latency on its sub-accelerator, and the others idle (latency =
//     sum of per-layer latencies).
//   - Pipelined: a stream of inferences; each sub-accelerator works on a
//     different image, so steady-state throughput is set by the most
//     loaded sub-accelerator (throughput bound = max per-accelerator
//     total).
package hetero

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/tensor"
)

// SubAccel is one sub-accelerator of the chip.
type SubAccel struct {
	Name     string
	Dataflow dataflow.Dataflow
	Cfg      hw.Config
}

// Assignment records where one layer runs.
type Assignment struct {
	Layer  tensor.Layer
	Count  int
	Accel  int // index into the chip's sub-accelerators
	Result *core.Result
}

// Plan is the evaluation of one model on one heterogeneous chip.
type Plan struct {
	Assignments []Assignment
	// LatencyCycles is the single-inference latency (sequential layers).
	LatencyCycles int64
	// PipelineBound is the steady-state cycles per inference when the
	// sub-accelerators pipeline across images: the busiest accelerator's
	// total load.
	PipelineBound int64
	// PerAccel is each sub-accelerator's total load in cycles.
	PerAccel []int64
	EnergyPJ float64
}

// Evaluate assigns every layer of the model to its fastest
// sub-accelerator and prices the sequential and pipelined disciplines.
func Evaluate(m models.Model, accels []SubAccel) (*Plan, error) {
	if len(accels) == 0 {
		return nil, fmt.Errorf("hetero: no sub-accelerators")
	}
	plan := &Plan{PerAccel: make([]int64, len(accels))}
	for _, li := range m.Layers {
		var best *core.Result
		bestIdx := -1
		for i, acc := range accels {
			r, err := core.AnalyzeDataflow(acc.Dataflow, li.Layer, acc.Cfg)
			if err != nil {
				continue
			}
			if best == nil || r.Runtime < best.Runtime {
				best, bestIdx = r, i
			}
		}
		if best == nil {
			return nil, fmt.Errorf("hetero: no sub-accelerator maps layer %s", li.Layer.Name)
		}
		n := int64(li.Count)
		plan.Assignments = append(plan.Assignments, Assignment{
			Layer: li.Layer, Count: li.Count, Accel: bestIdx, Result: best,
		})
		plan.LatencyCycles += best.Runtime * n
		plan.PerAccel[bestIdx] += best.Runtime * n
		plan.EnergyPJ += best.EnergyDefault().OnChip() * float64(n)
	}
	for _, load := range plan.PerAccel {
		if load > plan.PipelineBound {
			plan.PipelineBound = load
		}
	}
	return plan, nil
}

// Utilization returns the fraction of the chip's sub-accelerators kept
// busy in the pipelined discipline: total load over (stages * bound).
func (p *Plan) Utilization() float64 {
	if p.PipelineBound == 0 {
		return 0
	}
	var total int64
	for _, l := range p.PerAccel {
		total += l
	}
	return float64(total) / float64(p.PipelineBound*int64(len(p.PerAccel)))
}

// Homogeneous builds a chip of n identical sub-accelerators running one
// dataflow (the baseline a heterogeneous design is compared against).
func Homogeneous(name string, n int, df dataflow.Dataflow, cfg hw.Config) []SubAccel {
	out := make([]SubAccel, n)
	for i := range out {
		out[i] = SubAccel{Name: fmt.Sprintf("%s-%d", name, i), Dataflow: df, Cfg: cfg}
	}
	return out
}
