package hetero

import (
	"testing"

	"repro/internal/dataflows"
	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/noc"
)

func subCfg(pes int) hw.Config {
	m := noc.Bus(16)
	m.Reduction = true
	return hw.Config{Name: "sub", NumPEs: pes, NoCs: []noc.Model{m}}.Normalize()
}

func chip() []SubAccel {
	return []SubAccel{
		{Name: "act-parallel", Dataflow: dataflows.Get("YX-P"), Cfg: subCfg(128)},
		{Name: "chan-parallel", Dataflow: dataflows.Get("KC-P"), Cfg: subCfg(128)},
	}
}

func TestHeteroBeatsHomogeneousOnMixedModel(t *testing.T) {
	// MobileNetV2 mixes point-wise and depth-wise operators with opposite
	// dataflow preferences — the paper's motivating case.
	m := models.MobileNetV2()
	het, err := Evaluate(m, chip())
	if err != nil {
		t.Fatal(err)
	}
	for _, dfName := range []string{"YX-P", "KC-P"} {
		hom, err := Evaluate(m, Homogeneous("hom", 2, dataflows.Get(dfName), subCfg(128)))
		if err != nil {
			t.Fatal(err)
		}
		if het.LatencyCycles > hom.LatencyCycles {
			t.Errorf("heterogeneous latency %d worse than homogeneous %s %d",
				het.LatencyCycles, dfName, hom.LatencyCycles)
		}
	}
}

func TestPlanAccounting(t *testing.T) {
	m := models.Model{Name: "two", Layers: models.MobileNetV2().Layers[:4]}
	p, err := Evaluate(m, chip())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Assignments) != 4 {
		t.Fatalf("assignments = %d", len(p.Assignments))
	}
	var sum int64
	for _, l := range p.PerAccel {
		sum += l
	}
	if sum != p.LatencyCycles {
		t.Errorf("per-accelerator loads %d != latency %d", sum, p.LatencyCycles)
	}
	if p.PipelineBound > p.LatencyCycles || p.PipelineBound <= 0 {
		t.Errorf("pipeline bound %d vs latency %d", p.PipelineBound, p.LatencyCycles)
	}
	if u := p.Utilization(); u <= 0 || u > 1 {
		t.Errorf("utilization %v", u)
	}
}

func TestHomogeneousPipelineEqualsLatencyOnOneStage(t *testing.T) {
	m := models.Model{Name: "sub", Layers: models.MobileNetV2().Layers[:3]}
	p, err := Evaluate(m, Homogeneous("solo", 1, dataflows.Get("KC-P"), subCfg(64)))
	if err != nil {
		t.Fatal(err)
	}
	if p.PipelineBound != p.LatencyCycles {
		t.Errorf("single stage: bound %d != latency %d", p.PipelineBound, p.LatencyCycles)
	}
	if p.Utilization() != 1 {
		t.Errorf("single stage utilization %v", p.Utilization())
	}
}

func TestEvaluateRejectsEmptyChip(t *testing.T) {
	if _, err := Evaluate(models.MobileNetV2(), nil); err == nil {
		t.Error("empty chip accepted")
	}
}
