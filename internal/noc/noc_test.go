package noc

import (
	"testing"
	"testing/quick"
)

func TestDelayPipeModel(t *testing.T) {
	m := Model{Name: "t", Bandwidth: 4, AvgLatency: 3}
	cases := []struct {
		n    int64
		want int64
	}{
		{0, 0},  // nothing to send
		{1, 4},  // latency + 1
		{4, 4},  // one beat
		{5, 5},  // two beats
		{16, 7}, // four beats
		{1000, 3 + 250},
	}
	for _, c := range cases {
		if got := m.Delay(c.n); got != c.want {
			t.Errorf("Delay(%d) = %d; want %d", c.n, got, c.want)
		}
	}
}

func TestDelayFractionalBandwidth(t *testing.T) {
	m := Model{Name: "t", Bandwidth: 0.5, AvgLatency: 0}
	if got := m.Delay(3); got != 6 {
		t.Errorf("Delay(3) at bw 0.5 = %d; want 6", got)
	}
}

// Property: delay is monotone in payload and never below latency+1 for a
// non-empty payload.
func TestDelayMonotone(t *testing.T) {
	m := Bus(16)
	f := func(a, b uint16) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		dx, dy := m.Delay(x), m.Delay(y)
		if dx > dy {
			return false
		}
		return x == 0 || dx >= m.AvgLatency+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPresets(t *testing.T) {
	if !Bus(8).Multicast || Bus(8).Reduction {
		t.Error("bus: multicast without reduction expected")
	}
	if m := Mesh(8); m.Bandwidth != 8 || m.AvgLatency != 8 {
		t.Errorf("mesh(8) = %+v", m)
	}
	if m := Tree(64); !m.Multicast || !m.Reduction || m.AvgLatency != 7 {
		t.Errorf("tree(64) = %+v; want log-depth latency 7", m)
	}
	if m := SystolicRow(16); !m.Reduction || m.Bandwidth != 1 {
		t.Errorf("systolic = %+v", m)
	}
	for _, m := range []Model{Bus(4), Crossbar(4), Mesh(4), Tree(4), SystolicRow(4)} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	if err := (Model{Bandwidth: 0}).Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if err := (Model{Bandwidth: 1, AvgLatency: -1}).Validate(); err == nil {
		t.Error("negative latency accepted")
	}
}

func TestBandwidthConversion(t *testing.T) {
	// 32 GB/s at 1 GHz with 1-byte elements = 32 elements/cycle.
	if got := GBpsToElems(32, 1, 1); got != 32 {
		t.Errorf("GBpsToElems = %v", got)
	}
	// fp16 halves the element rate.
	if got := GBpsToElems(32, 1, 2); got != 16 {
		t.Errorf("GBpsToElems fp16 = %v", got)
	}
	if got := ElemsToGBps(16, 1, 2); got != 32 {
		t.Errorf("ElemsToGBps = %v", got)
	}
	// Round trip.
	if got := ElemsToGBps(GBpsToElems(13, 1.5, 2), 1.5, 2); got != 13 {
		t.Errorf("round trip = %v", got)
	}
}

func TestDelayPerChannels(t *testing.T) {
	shared := Model{Name: "s", Bandwidth: 3, AvgLatency: 1}
	// Shared pipe serializes: 1 + ceil(30/3).
	if got := shared.DelayPer(10, 10, 10); got != 11 {
		t.Errorf("shared DelayPer = %d; want 11", got)
	}
	ch := shared
	ch.Channels = 3
	// Dedicated channels overlap: slowest channel at bandwidth 1.
	if got := ch.DelayPer(10, 10, 10); got != 11 {
		t.Errorf("balanced channels DelayPer = %d; want 11", got)
	}
	// Skewed traffic: channels can't borrow idle bandwidth.
	if got, sharedD := ch.DelayPer(30, 0, 0), shared.DelayPer(30, 0, 0); got <= sharedD {
		t.Errorf("skewed channels %d should exceed shared %d", got, sharedD)
	}
	// Balanced traffic: channels match the aggregate pipe (the paper's
	// "bandwidth of 3X properly models the top level NoC" equivalence)
	// and never do worse.
	if got, sharedD := ch.DelayPer(9, 9, 9), shared.DelayPer(9, 9, 9); got > sharedD {
		t.Errorf("balanced channels %d worse than shared %d", got, sharedD)
	}
	// Skew always costs with fixed channel shares: dedicated wires
	// cannot be borrowed, so channels never beat the aggregate pipe.
	if got, sharedD := ch.DelayPer(9, 6, 3), shared.DelayPer(9, 6, 3); got < sharedD {
		t.Errorf("channels %d beat the aggregate pipe %d; impossible with fixed shares", got, sharedD)
	}
}
