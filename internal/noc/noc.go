// Package noc provides the analytical network-on-chip model of MAESTRO
// (Section 4.2): a pipe characterized by bandwidth (width) and average
// latency (length), with capability flags for in-network spatial multicast
// and spatial reduction (Table 2).
//
// The pipe model incorporates pipelining: delivering n elements costs
// latency + ceil(n / bandwidth) cycles. Presets approximate common
// topologies the paper discusses (bus, crossbar, 2D mesh bisection,
// systolic store-and-forward).
package noc

import (
	"fmt"
	"math"
)

// Model is one NoC link: the connection between a buffer level and the
// sub-clusters below it.
type Model struct {
	Name string
	// Bandwidth is the pipe width in data elements per cycle.
	Bandwidth float64
	// AvgLatency is the pipe length: average cycles from injection to
	// delivery, e.g. N for an N x N mesh injected at a corner.
	AvgLatency int64
	// Multicast reports in-network spatial multicast support (fan-out
	// bus/tree): one read from the parent buffer reaches all sub-clusters.
	// Without it, replicated data is read and sent once per destination.
	Multicast bool
	// Reduction reports in-network spatial reduction support (fan-in
	// adder tree or reduce-and-forward): partial sums combine in flight.
	// Without it, every sub-cluster's partial output travels to the
	// parent buffer and accumulates there.
	Reduction bool
	// Channels > 1 dedicates a fixed share of the bandwidth to each
	// tensor (Eyeriss's per-tensor channels: "a bandwidth of 3X properly
	// models the top level NoC"). Transfers of different tensors then
	// overlap — the delay of a step is the slowest channel, not the sum —
	// but a hot tensor cannot borrow idle channels' wires. 0 or 1 means
	// one shared pipe.
	Channels int
}

// Validate reports an error for non-physical parameters.
func (m Model) Validate() error {
	if !(m.Bandwidth > 0) || math.IsInf(m.Bandwidth, 0) {
		// !(x > 0) also rejects NaN, which every ordered comparison
		// would otherwise wave through.
		return fmt.Errorf("noc %s: bandwidth %v must be positive and finite", m.Name, m.Bandwidth)
	}
	if m.AvgLatency < 0 {
		return fmt.Errorf("noc %s: negative latency", m.Name)
	}
	return nil
}

// Delay returns the pipe-model cycles to deliver n elements: avgLatency +
// ceil(n/bandwidth). Zero elements cost nothing.
func (m Model) Delay(n int64) int64 {
	return m.delayAt(n, m.Bandwidth)
}

func (m Model) delayAt(n int64, bw float64) int64 {
	if n <= 0 {
		return 0
	}
	cycles := int64(float64(n)/bw + 0.999999)
	if cycles < 1 {
		cycles = 1
	}
	return m.AvgLatency + cycles
}

// DelayPer returns the cycles to deliver per-tensor payloads. With
// dedicated channels each payload rides its own bandwidth share and the
// slowest channel governs; with a shared pipe the payloads serialize.
func (m Model) DelayPer(payloads ...int64) int64 {
	if m.Channels <= 1 {
		var sum int64
		for _, n := range payloads {
			sum += n
		}
		return m.Delay(sum)
	}
	per := m.Bandwidth / float64(m.Channels)
	var worst int64
	for _, n := range payloads {
		if d := m.delayAt(n, per); d > worst {
			worst = d
		}
	}
	return worst
}

// Bus models a shared bus of the given element-per-cycle width with
// broadcast (multicast) support but no in-network reduction.
func Bus(width float64) Model {
	return Model{Name: "bus", Bandwidth: width, AvgLatency: 2, Multicast: true}
}

// Crossbar models an n-port crossbar: n parallel element channels,
// single-cycle arbitration latency, multicast-capable.
func Crossbar(n int) Model {
	return Model{Name: "crossbar", Bandwidth: float64(n), AvgLatency: 1, Multicast: true}
}

// Mesh models an n x n 2D mesh injected at a corner, following the paper's
// guidance: bisection bandwidth n, average latency n.
func Mesh(n int) Model {
	return Model{Name: "mesh", Bandwidth: float64(n), AvgLatency: int64(n), Multicast: true}
}

// SystolicRow models a store-and-forward systolic chain of n PEs: one
// element per cycle enters the chain, average delivery latency n/2, with
// forwarding acting as multicast and reduce-and-forward as reduction.
func SystolicRow(n int) Model {
	return Model{
		Name: "systolic", Bandwidth: 1, AvgLatency: int64(n / 2),
		Multicast: true, Reduction: true,
	}
}

// Tree models a fan-out/fan-in tree over n leaves: full-width distribution
// with log-depth latency and both multicast and reduction support (the
// MAERI-style fat tree).
func Tree(n int) Model {
	lat := int64(1)
	for m := 1; m < n; m *= 2 {
		lat++
	}
	return Model{Name: "tree", Bandwidth: float64(n), AvgLatency: lat, Multicast: true, Reduction: true}
}

// GBpsToElems converts a link bandwidth in GB/s to elements per cycle for
// a given clock (GHz) and element size (bytes). The paper's experiments
// quote NoC bandwidth in GB/s (e.g. 32 GB/s at 1 GHz, 1-byte elements).
func GBpsToElems(gbps, clockGHz float64, elemBytes int) float64 {
	return gbps / clockGHz / float64(elemBytes)
}

// ElemsToGBps converts elements per cycle back to GB/s.
func ElemsToGBps(elems, clockGHz float64, elemBytes int) float64 {
	return elems * clockGHz * float64(elemBytes)
}
