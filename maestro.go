// Package maestro is a Go implementation of MAESTRO — the data-centric
// DNN dataflow cost model of Kwon et al., "Understanding Reuse,
// Performance, and Hardware Cost of DNN Dataflows: A Data-Centric
// Approach Using MAESTRO" (MICRO-52, 2019).
//
// It provides:
//
//   - the data-centric directive representation (SpatialMap, TemporalMap,
//     Cluster) with a MAESTRO-style DSL and a programmatic builder;
//   - the five analysis engines (tensor, cluster, reuse, performance,
//     cost) that estimate runtime, energy, NoC bandwidth requirements and
//     buffer requirements for a layer + dataflow + hardware configuration;
//   - a step-accurate reference simulator used to validate the analytical
//     model (the paper's Figure 9 methodology);
//   - the Table 3 dataflow library (C-P, X-P, YX-P, YR-P, KC-P) and a
//     model zoo (VGG16, AlexNet, ResNet50, ResNeXt50, MobileNetV2, UNet,
//     DCGAN);
//   - a design-space exploration tool sweeping PEs, buffers and NoC
//     bandwidth under area/power budgets (Figure 13).
//
// Quick start:
//
//	layer := maestro.Conv2D("conv", 64, 64, 56, 3, 1)
//	df := maestro.DataflowByName("KC-P")
//	result, err := maestro.Analyze(df, layer, maestro.Accel256())
//	fmt.Println(result)
package maestro

import (
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/dataflows"
	"repro/internal/dse"
	"repro/internal/energy"
	"repro/internal/fleet"
	"repro/internal/hetero"
	"repro/internal/hw"
	"repro/internal/mapper"
	"repro/internal/models"
	"repro/internal/netsched"
	"repro/internal/noc"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/tuner"
)

// Core tensor/layer types.
type (
	// Dim is one of the seven data dimensions N, K, C, Y, X, R, S.
	Dim = tensor.Dim
	// Layer describes one DNN layer shape.
	Layer = tensor.Layer
	// Sizes holds one extent per dimension.
	Sizes = tensor.Sizes
	// Kind identifies the input, weight, or output tensor.
	Kind = tensor.Kind
	// OpType classifies the operator (Conv2D, DepthwiseConv, ...).
	OpType = tensor.OpType
)

// Dimension constants.
const (
	N = tensor.N
	K = tensor.K
	C = tensor.C
	Y = tensor.Y
	X = tensor.X
	R = tensor.R
	S = tensor.S
)

// Tensor kinds.
const (
	Input  = tensor.Input
	Weight = tensor.Weight
	Output = tensor.Output
)

// Operator types.
const (
	OpConv2D         = tensor.Conv2D
	OpDepthwiseConv  = tensor.DepthwiseConv
	OpPointwiseConv  = tensor.PointwiseConv
	OpFullyConnected = tensor.FullyConnected
	OpTransposedConv = tensor.TransposedConv
	OpPooling        = tensor.Pooling
	OpGEMM           = tensor.GEMM
)

// Dataflow representation.
type (
	// Dataflow is an ordered data-centric directive list.
	Dataflow = dataflow.Dataflow
	// Directive is one SpatialMap/TemporalMap/Cluster entry.
	Directive = dataflow.Directive
	// SizeExpr is a possibly symbolic size (the paper's Sz(d) notation).
	SizeExpr = dataflow.SizeExpr
	// Spec is a dataflow bound to a layer and PE count.
	Spec = dataflow.Spec
	// Network is a parsed DSL file.
	Network = dataflow.Network
)

// Directive builders.
var (
	TMap      = dataflow.TMap
	SMap      = dataflow.SMap
	ClusterOf = dataflow.ClusterOf
	Lit       = dataflow.Lit
	Sz        = dataflow.Sz
)

// DSL entry points.
var (
	ParseNetwork  = dataflow.ParseNetwork
	ParseDataflow = dataflow.ParseDataflow
	Resolve       = dataflow.Resolve
)

// LintWarning is one mapping-inefficiency finding.
type LintWarning = dataflow.Warning

// Lint reports mapping inefficiencies (idle PEs, under-filled spatial
// maps, redundant compute, partial-sum spills) the cost model will
// charge for.
var Lint = dataflow.Lint

// Hardware and cost models.
type (
	// HWConfig is the abstract accelerator of the paper's Figure 2.
	HWConfig = hw.Config
	// NoCModel is the analytical pipe model of one NoC level.
	NoCModel = noc.Model
	// CostModel prices building-block area and power for the DSE.
	CostModel = hw.CostModel
	// EnergyTable holds per-event energies.
	EnergyTable = energy.Table
)

// Hardware presets and helpers.
var (
	Accel256     = hw.Accel256
	MAERI64      = hw.MAERI64
	Eyeriss168   = hw.Eyeriss168
	Default28nm  = hw.Default28nm
	Bus          = noc.Bus
	Crossbar     = noc.Crossbar
	Mesh         = noc.Mesh
	SystolicRow  = noc.SystolicRow
	Tree         = noc.Tree
	GBpsToElems  = noc.GBpsToElems
	DefaultTable = energy.DefaultTable
	// ParseEnergyTable reads a per-event energy table file (the
	// Accelergy-style substitution point of Section 4.3).
	ParseEnergyTable = energy.ParseTable
)

// Analysis results.
type (
	// Result is the performance + cost report for one layer.
	Result = core.Result
	// SimResult is the reference simulator's measurement.
	SimResult = sim.Result
)

// Typed validation errors. Analyze and Resolve wrap every
// validation failure — malformed dataflow, layer, or hardware
// configuration — with one of these sentinels, so callers (notably the
// analysis service) can separate caller mistakes from internal faults
// with errors.Is.
var (
	ErrInvalidDataflow = dataflow.ErrInvalid
	ErrInvalidLayer    = tensor.ErrInvalidLayer
	ErrInvalidConfig   = hw.ErrInvalidConfig
)

// Augment returns the dataflow with every implicit mapping made
// explicit against a layer: unmentioned dimensions become single-chunk
// temporal maps at each cluster level. The result is the canonical form
// the analysis service hashes for its result cache; augmenting an
// already augmented dataflow is the identity.
var Augment = dataflow.Augment

// Analyze runs the analytical cost model on a dataflow, layer and
// hardware configuration.
func Analyze(df Dataflow, layer Layer, cfg HWConfig) (*Result, error) {
	return core.AnalyzeDataflow(df, layer, cfg)
}

// AnalyzeSpec analyzes an already resolved dataflow.
var AnalyzeSpec = core.Analyze

// AnalyzeCached is Analyze through the shared profile cache: the
// hardware-independent cluster walk is fetched (or built once) per
// (dataflow, layer, PE count) and re-priced under cfg, so sweeps that
// vary only hardware knobs skip the walk entirely.
func AnalyzeCached(df Dataflow, layer Layer, cfg HWConfig) (*Result, error) {
	return core.AnalyzeDataflowCached(df, layer, cfg)
}

// Profile/Price split the cost model into its hardware-independent and
// hardware-dependent phases.
type (
	// LayerProfile is the memoized hardware-independent analysis of one
	// (dataflow, layer, PE count) triple; Price it under any hardware
	// configuration with that PE count.
	LayerProfile = core.LayerProfile
	// ProfileCache is a sharded LRU + singleflight cache of LayerProfiles.
	ProfileCache = core.ProfileCache
)

// Profile/Price entry points.
var (
	// Profile runs the recursive cluster walk once on a resolved dataflow
	// and records the hardware-independent case quantities.
	Profile = core.Profile
	// Price re-prices a profile under a hardware configuration; the
	// result is bit-identical to AnalyzeSpec on the same inputs.
	Price = core.Price
	// PriceBatch prices a profile under many hardware configurations in
	// one DAG walk; results[i] is bit-identical to Price(p, cfgs[i]).
	PriceBatch = core.PriceBatch
	// AnalyzeCachedBatch prices many configurations of one
	// (dataflow, layer) pair with a single profile fetch and batch walk.
	AnalyzeCachedBatch = core.AnalyzeDataflowCachedBatch
	// ProfileDataflow resolves and profiles through the shared cache.
	ProfileDataflow = core.ProfileDataflow
	// NewProfileCache builds a private profile cache.
	NewProfileCache = core.NewProfileCache
	// SharedProfileCache is the package-level cache the tuner, the DSE
	// endpoint, and AnalyzeCached share.
	SharedProfileCache = core.DefaultProfileCache
)

// AnalyzeAll analyzes many layers concurrently under one dataflow and
// configuration, preserving order.
var AnalyzeAll = core.AnalyzeAll

// Simulate runs the step-accurate reference simulator on a resolved
// dataflow (the Figure 9 validation path).
var Simulate = sim.Simulate

// Model zoo.
type (
	// Model is a named DNN layer list.
	Model = models.Model
	// LayerInst is one layer with its repetition count and Table 4 class.
	LayerInst = models.LayerInst
	// OperatorClass is the Table 4 taxonomy.
	OperatorClass = models.Class
)

// Model constructors.
var (
	VGG16            = models.VGG16
	GoogLeNet        = models.GoogLeNet
	AlexNet          = models.AlexNet
	ResNet50         = models.ResNet50
	ResNeXt50        = models.ResNeXt50
	MobileNetV2      = models.MobileNetV2
	UNet             = models.UNet
	DCGAN            = models.DCGAN
	LSTM             = models.LSTM
	EvaluationModels = models.EvaluationModels
	ClassifyLayer    = models.Classify
)

// DataflowByName returns one of the paper's Table 3 dataflows:
// "C-P", "X-P", "YX-P", "YR-P", or "KC-P".
var DataflowByName = dataflows.Get

// DataflowNames lists the Table 3 dataflow names in plotting order.
var DataflowNames = dataflows.Names

// AllDataflows returns the five Table 3 dataflows.
var AllDataflows = dataflows.All

// Parameterized dataflow templates for design-space exploration.
var (
	KCPSized = dataflows.KCPSized
	YRPSized = dataflows.YRPSized
	YXPSized = dataflows.YXPSized
)

// Design-space exploration.
type (
	// DSESpace is the search space of one DSE run.
	DSESpace = dse.Space
	// DSEPoint is one valid design.
	DSEPoint = dse.Point
	// DSEStats summarizes an exploration run.
	DSEStats = dse.Stats
	// DSETemplate parameterizes a dataflow style with tile-size knobs.
	DSETemplate = dse.Template
)

// DSE entry points.
var (
	Explore       = dse.Explore
	ThroughputOpt = dse.ThroughputOpt
	EnergyOpt     = dse.EnergyOpt
	EDPOpt        = dse.EDPOpt
	Pareto        = dse.Pareto
	DefaultGrid   = dse.DefaultGrid
)

// Auto-tuner (the paper's Section 7 future work): searches dataflow
// styles and tile sizes for the best mapping of a layer on a hardware
// configuration.
type (
	// TunerOptions configures the mapping search.
	TunerOptions = tuner.Options
	// TunerChoice is one tuned mapping with its analysis.
	TunerChoice = tuner.Choice
)

// Tuner objectives.
const (
	MinRuntime = tuner.MinRuntime
	MinEnergy  = tuner.MinEnergy
	MinEDP     = tuner.MinEDP
)

// Tuner entry points.
var (
	TuneLayer = tuner.TuneLayer
	// TuneLayerConfigs tunes one layer under several hardware variants,
	// pricing each candidate across the variants in one batch walk.
	TuneLayerConfigs = tuner.TuneLayerConfigs
	TuneLayers       = tuner.TuneLayers
)

// Mapping-space search (loop orders x tilings x spatial dims; the class
// of mapper the paper positions MAESTRO to drive).
type (
	// MapperCandidate encodes one point of the mapping space.
	MapperCandidate = mapper.Candidate
	// MapperOptions configures a mapping search.
	MapperOptions = mapper.Options
	// MapperBest is a search's winning mapping.
	MapperBest = mapper.Best
	// MapperStats summarizes a search run.
	MapperStats = mapper.Stats
)

// Mapper strategies.
const (
	MapperExhaustive   = mapper.Exhaustive
	MapperRandomSample = mapper.RandomSample
	MapperHillClimb    = mapper.HillClimb
)

// SearchMappings explores the mapping space of a layer on a
// configuration.
var SearchMappings = mapper.Search

// Whole-network scheduling with inter-layer L2 residency and residual
// pinning (the Table 4 inter-layer effects).
type (
	// NetSchedule is an end-to-end network plan.
	NetSchedule = netsched.Schedule
	// NetOptions configures network scheduling.
	NetOptions = netsched.Options
	// ResidualEdge is a skip connection between layer indices.
	ResidualEdge = netsched.Edge
	// LayerPlan is one scheduled layer of a network plan.
	LayerPlan = netsched.LayerPlan
)

// ScheduleNetwork plans a model's layers on one accelerator.
var ScheduleNetwork = netsched.Run

// Graph-level fusion scheduling: the network DAG partitioned into
// fusion subgraphs that stream tile bands through L2, validated
// step-accurately by the simulator's band-by-band replay (see
// docs/NETSCHED.md).
type (
	// FusedNetSchedule is a graph-level fused network plan.
	FusedNetSchedule = netsched.FusedSchedule
	// FuseNetOptions configures graph-level fusion scheduling.
	FuseNetOptions = netsched.FuseOptions
	// FusionGroup is one fusion subgraph of a fused plan.
	FusionGroup = netsched.GroupPlan
	// FusedNetReplay is the simulator's replay of a fused plan.
	FusedNetReplay = sim.FusedReplay
	// FusionSweepSpace is a DSE sweep over fused schedules.
	FusionSweepSpace = dse.FusionSpace
	// FusionSweepPoint is one priced partitioning of such a sweep.
	FusionSweepPoint = dse.FusionPoint
)

// Fused-scheduling entry points: schedule a model's activation DAG,
// replay the schedule in the simulator, and sweep the (L2 budget x
// fusion granularity) plane.
var (
	ScheduleNetworkFused = netsched.RunFused
	ReplayFusedSchedule  = sim.ReplayFused
	ExploreFusion        = dse.ExploreFusion
	BestFusion           = dse.BestFusion
)

// Heterogeneous chips: several sub-accelerators with different dataflow
// styles, the design point the paper's Section 5.1 motivates.
type (
	// SubAccel is one sub-accelerator of a heterogeneous chip.
	SubAccel = hetero.SubAccel
	// HeteroPlan is a model's evaluation on a heterogeneous chip.
	HeteroPlan = hetero.Plan
)

// Heterogeneous-chip entry points.
var (
	EvaluateHetero = hetero.Evaluate
	Homogeneous    = hetero.Homogeneous
)

// Machine-readable exports and roofline analysis.
type (
	// ReportRow is the flat per-layer export record.
	ReportRow = report.Row
	// Roofline places a mapping against the compute and bandwidth roofs.
	Roofline = report.Roofline
)

// Export and roofline helpers.
var (
	ReportRowOf         = report.RowOf
	WriteCSV            = report.WriteCSV
	WriteJSON           = report.WriteJSON
	WriteDSECSV         = report.WriteDSECSV
	RooflineOf          = report.RooflineOf
	ArithmeticIntensity = report.ArithmeticIntensity
)

// ParseHWConfig reads a line-oriented accelerator description file.
var ParseHWConfig = hw.ParseConfig

// Transformer models the GEMM workload of one encoder block; BERTBase is
// the d=768/12-head/ff=3072 instantiation.
var (
	Transformer = models.Transformer
	BERTBase    = models.BERTBase
)

// Analysis service (cmd/maestro-serve): the HTTP JSON API over the
// cost model, with a canonical-request result cache, a bounded worker
// pool with backpressure, and Prometheus-format metrics.
type (
	// ServeOptions configures the analysis service.
	ServeOptions = serve.Options
	// ServeRequest is the body of POST /v1/analyze.
	ServeRequest = serve.AnalyzeRequest
	// ServeResponse is the body of a successful analysis call.
	ServeResponse = serve.AnalyzeResponse
	// ServeLayerSpec selects a zoo layer or describes a shape inline.
	ServeLayerSpec = serve.LayerSpec
	// ServeDataflowSpec selects a Table 3 dataflow or carries DSL.
	ServeDataflowSpec = serve.DataflowSpec
	// ServeHWSpec selects a hardware preset and/or overrides fields.
	ServeHWSpec = serve.HWSpec
)

// NewAnalysisServer builds the analysis service; mount its Handler()
// and Close() it on shutdown to drain in-flight work.
var NewAnalysisServer = serve.New

// ServeChaos configures the service's fault-injection middleware
// (seeded error-rate and latency distributions on the /v1/* endpoints)
// for resilience testing and manual soak runs.
type ServeChaos = serve.Chaos

// Resilient client for the analysis service: stdlib-only, with
// jittered exponential retry honoring Retry-After, a per-host circuit
// breaker, optional hedging for idempotent analyze calls, and context
// deadline propagation into the service's timeout_ms.
type (
	// Client calls a maestro-serve instance with retries, backoff, and
	// a circuit breaker; build with NewClient.
	Client = client.Client
	// ClientOptions configures a Client.
	ClientOptions = client.Options
	// ClientStats snapshots a Client's resilience counters.
	ClientStats = client.Stats
	// ClientBreakerOptions configures the per-host circuit breaker.
	ClientBreakerOptions = client.BreakerOptions
	// ClientBreakerState is a circuit breaker position
	// (closed/open/half-open).
	ClientBreakerState = client.BreakerState
	// ClientAPIError is a terminal, non-retryable service answer.
	ClientAPIError = client.APIError
)

// NewClient builds a resilient client for the analysis service at
// opts.BaseURL.
var NewClient = client.New

// Client sentinel errors.
var (
	// ErrClientCircuitOpen reports a call refused locally by an open
	// circuit breaker.
	ErrClientCircuitOpen = client.ErrCircuitOpen
	// ErrClientExhausted reports that every retry attempt failed.
	ErrClientExhausted = client.ErrExhausted
)

// Distributed DSE: a Fleet shards one design-space sweep across
// several maestro-serve nodes, routes shards with a consistent hash
// over the canonical (layer, template, PE subset) key so repeat sweeps
// hit warm profile caches, and merges the partial Pareto fronts as
// shards complete. Node loss re-dispatches stranded shards along the
// ring; a straggler watchdog steals the slowest shard onto an idle
// node with at-most-once result accounting.
type (
	// Fleet coordinates sharded sweeps over a pool of serve nodes;
	// build with NewFleet.
	Fleet = fleet.Fleet
	// FleetOptions configures a Fleet.
	FleetOptions = fleet.Options
	// FleetResult is a completed distributed sweep: merged front,
	// optima, and aggregated counters.
	FleetResult = fleet.Result
	// FleetStats snapshots fleet dispatch counters and per-node
	// breaker positions.
	FleetStats = fleet.Stats
	// FleetNodeStats is one node's share of fleet traffic.
	FleetNodeStats = fleet.NodeStats
	// FleetShardResult is one accepted shard response, streamed via
	// FleetOptions.OnShard.
	FleetShardResult = fleet.ShardResult
	// FleetFusionShardResult is one settled fusion chunk, streamed via
	// FleetOptions.OnFusionShard.
	FleetFusionShardResult = fleet.FusionShardResult
	// FleetProbeOptions configures the active health prober
	// (FleetOptions.Probe); a zero Interval disables probing.
	FleetProbeOptions = fleet.ProbeOptions
	// FleetHealth is a probed node state: unknown, up, draining, dead.
	FleetHealth = fleet.Health
	// DSEShardSpec is one shard of a partitioned (PE, tile-knob) grid.
	DSEShardSpec = dse.Shard
	// ServeDSEShard is the /v1/dse shard descriptor scoping a sweep to
	// one shard of a distributed run.
	ServeDSEShard = serve.DSEShard
)

// NewFleet builds a fleet coordinator over FleetOptions.Hosts.
var NewFleet = fleet.New

// Sharding and incremental-merge primitives behind the fleet, exported
// for custom coordinators.
var (
	// PartitionDSE splits the (PE, P1) axes into contiguous shards.
	PartitionDSE = dse.Partition
	// MergePareto folds a batch of points into a running Pareto front;
	// folding shard fronts in any grouping equals one Pareto over the
	// concatenation.
	MergePareto = dse.MergePareto
	// SortDSEPoints orders points canonically so merged fronts compare
	// bit-identical regardless of arrival order.
	SortDSEPoints = dse.SortPoints
	// DSERouteKey is the canonical routing key the fleet hashes shards
	// by — the same (dataflow, layer, PE) family the servers' profile
	// caches are keyed on.
	DSERouteKey = serve.DSERouteKey
)

// Conv2D builds a dense convolution with k output channels, c input
// channels, out x out output positions, an r x r filter and the given
// stride (input extent derives as (out-1)*stride + r).
func Conv2D(name string, k, c, out, r, stride int) Layer {
	in := (out-1)*stride + r
	return Layer{
		Name: name, Op: OpConv2D,
		Sizes:   Sizes{N: 1, K: k, C: c, Y: in, X: in, R: r, S: r},
		StrideY: stride, StrideX: stride,
	}.Normalize()
}
