// Benchmarks regenerating the paper's evaluation: one benchmark per
// table/figure (running the same harness as cmd/experiments), plus
// micro-benchmarks of the cost model and DSE themselves (the paper quotes
// ~10 ms per MAESTRO run and 0.17M designs/s DSE throughput).
package maestro_test

import (
	"io"
	"testing"

	maestro "repro"
	"repro/internal/dse"
	"repro/internal/experiments"
	"repro/internal/sim"
)

// benchExperiment runs one experiment harness per iteration.
func benchExperiment(b *testing.B, f func(io.Writer, experiments.Options) error, quick bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := f(io.Discard, experiments.Options{Quick: quick}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates the reuse-opportunity table.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, experiments.Table1, false) }

// BenchmarkTable3 round-trips the five dataflow definitions.
func BenchmarkTable3(b *testing.B) { benchExperiment(b, experiments.Table3, false) }

// BenchmarkTable4 classifies the model zoo.
func BenchmarkTable4(b *testing.B) { benchExperiment(b, experiments.Table4, false) }

// BenchmarkTable5 runs the multicast/reduction/bandwidth ablation.
func BenchmarkTable5(b *testing.B) { benchExperiment(b, experiments.Table5, false) }

// BenchmarkFig9 validates the analytical model against the simulator on
// layer subsets (the full VGG16+AlexNet sweep runs via cmd/experiments).
func BenchmarkFig9(b *testing.B) { benchExperiment(b, experiments.Fig9, true) }

// BenchmarkFig10 prices five dataflows across the model zoo.
func BenchmarkFig10(b *testing.B) { benchExperiment(b, experiments.Fig10, false) }

// BenchmarkFig11 computes reuse factors and bandwidth requirements.
func BenchmarkFig11(b *testing.B) { benchExperiment(b, experiments.Fig11, false) }

// BenchmarkFig12 computes the energy breakdowns.
func BenchmarkFig12(b *testing.B) { benchExperiment(b, experiments.Fig12, false) }

// BenchmarkFig13 runs the four design-space explorations (quick grids).
func BenchmarkFig13(b *testing.B) { benchExperiment(b, experiments.Fig13, true) }

// BenchmarkHeadline reproduces the abstract's design-point comparison.
func BenchmarkHeadline(b *testing.B) { benchExperiment(b, experiments.Headline, true) }

// BenchmarkAnalyzeLayer measures one analytical cost-model invocation on
// a VGG16 layer (the paper quotes ~10 ms per MAESTRO run; this
// implementation is considerably faster because the case enumeration is
// closed-form and memoized).
func BenchmarkAnalyzeLayer(b *testing.B) {
	vgg := maestro.VGG16()
	li, _ := vgg.Find("CONV11")
	df := maestro.DataflowByName("KC-P")
	cfg := maestro.Accel256()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := maestro.Analyze(df, li.Layer, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.Runtime == 0 {
			b.Fatal("zero runtime")
		}
	}
}

// BenchmarkAnalyzeModel prices all of VGG16 under one dataflow.
func BenchmarkAnalyzeModel(b *testing.B) {
	vgg := maestro.VGG16()
	df := maestro.DataflowByName("YR-P")
	cfg := maestro.Accel256()
	for i := 0; i < b.N; i++ {
		for _, li := range vgg.Layers {
			if _, err := maestro.Analyze(df, li.Layer, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSimulator measures the step-accurate reference simulator on a
// mid-size layer (the RTL substitute of Figure 9; the paper's RTL costs
// hours per layer).
func BenchmarkSimulator(b *testing.B) {
	layer := maestro.Conv2D("bench", 32, 16, 28, 3, 1)
	df := maestro.DataflowByName("KC-P")
	cfg := maestro.MAERI64()
	spec, err := maestro.Resolve(df, layer, cfg.NumPEs)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := sim.Simulate(spec, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDSE measures design-space exploration throughput and reports
// the effective designs/second rate (Figure 13(c); the paper averages
// 0.17M designs/s).
func BenchmarkDSE(b *testing.B) {
	vgg := maestro.VGG16()
	li, _ := vgg.Find("CONV11")
	space := maestro.DSESpace{
		Layer: li.Layer,
		Template: maestro.DSETemplate{
			Name: "KC-P", Build: maestro.KCPSized,
			P1: []int{16, 64, 256}, P2: []int{8, 32},
		},
		PEs:           []int{64, 128, 256, 512},
		BWs:           []float64{8, 32, 128},
		L1Grid:        maestro.DefaultGrid(64, 1<<16, 2),
		L2Grid:        maestro.DefaultGrid(1<<12, 1<<22, 1.5),
		AreaBudgetMM2: 16,
		PowerBudgetMW: 450,
		Cost:          maestro.Default28nm(),
	}
	var rate float64
	for i := 0; i < b.N; i++ {
		pts, stats := dse.Explore(space)
		if len(pts) == 0 {
			b.Fatal("no designs")
		}
		rate = stats.Rate()
	}
	b.ReportMetric(rate, "designs/s")
}

// BenchmarkAblations runs the extension ablation suite (NoC topology,
// sparsity, vector width, PE scaling, auto-tuner).
func BenchmarkAblations(b *testing.B) { benchExperiment(b, experiments.Ablations, true) }

// BenchmarkTuner measures the Section 7 auto-tuner on one layer.
func BenchmarkTuner(b *testing.B) {
	layer := maestro.Conv2D("bench", 64, 64, 28, 3, 1)
	cfg := maestro.Accel256()
	for i := 0; i < b.N; i++ {
		if _, err := maestro.TuneLayer(layer, cfg, maestro.TunerOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMapperHillClimb measures the free-form mapping search.
func BenchmarkMapperHillClimb(b *testing.B) {
	layer := maestro.Conv2D("bench", 32, 32, 16, 3, 1)
	cfg := maestro.Accel256()
	for i := 0; i < b.N; i++ {
		_, stats, err := maestro.SearchMappings(layer, cfg, maestro.MapperOptions{
			Strategy: maestro.MapperHillClimb, Budget: 200, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if stats.Evaluated == 0 {
			b.Fatal("no evaluations")
		}
	}
}

// BenchmarkNetworkSchedule measures whole-network scheduling with L2
// residency over MobileNetV2.
func BenchmarkNetworkSchedule(b *testing.B) {
	model := maestro.MobileNetV2()
	cfg := maestro.Accel256()
	fixed := func(maestro.Layer) (maestro.Dataflow, bool) {
		return maestro.DataflowByName("KC-P"), true
	}
	for i := 0; i < b.N; i++ {
		s, err := maestro.ScheduleNetwork(model, cfg, maestro.NetOptions{
			Dataflow: fixed, L2Bytes: 1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		if s.TotalCycles == 0 {
			b.Fatal("empty schedule")
		}
	}
}

// BenchmarkSimAlexNetConv2 measures the simulator on a full AlexNet
// layer at Eyeriss scale (one Figure 9 data point).
func BenchmarkSimAlexNetConv2(b *testing.B) {
	alex := maestro.AlexNet()
	li, _ := alex.Find("CONV2")
	cfg := maestro.Eyeriss168()
	spec, err := maestro.Resolve(maestro.DataflowByName("YR-P"), li.Layer, cfg.NumPEs)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := maestro.Simulate(spec, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
