// Quickstart: analyze one convolution layer under an NVDLA-style
// dataflow on the paper's 256-PE reference accelerator, and print the
// performance/cost report.
package main

import (
	"fmt"
	"log"

	maestro "repro"
)

func main() {
	// A ResNet-style convolution: 64 output channels, 64 input channels,
	// 56x56 outputs, 3x3 filter, stride 1.
	layer := maestro.Conv2D("conv3x3", 64, 64, 56, 3, 1)

	// The KC-P dataflow of the paper's Table 3 (NVDLA-like): output
	// channels parallel across clusters, input channels parallel within.
	df := maestro.DataflowByName("KC-P")

	// The case-study hardware: 256 PEs, 32 GB/s bus, 2 KB L1, 1 MB L2.
	cfg := maestro.Accel256()

	result, err := maestro.Analyze(df, layer, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(result)

	fmt.Printf("\nreuse factors: input %.1fx, weight %.1fx (algorithmic max %.1fx / %.1fx)\n",
		result.ReuseFactor(maestro.Input), result.ReuseFactor(maestro.Weight),
		layer.AlgorithmicReuse(maestro.Input), layer.AlgorithmicReuse(maestro.Weight))

	// Every mapping must compute exactly the algorithmic MACs and commit
	// the output tensor exactly once; CheckConservation verifies that.
	if err := result.CheckConservation(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("conservation check passed: the mapping is exact")
}
