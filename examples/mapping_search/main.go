// Mapping-space search: beyond the five named dataflow styles, explore
// free-form mappings — loop orders, tile sizes, spatial dimensions,
// cluster splits — under a cost-model evaluation budget, and place the
// winner on the machine's roofline.
package main

import (
	"fmt"
	"log"

	maestro "repro"
)

func main() {
	layer := maestro.Conv2D("conv", 64, 32, 28, 3, 1)
	cfg := maestro.Accel256()

	fmt.Printf("searching mappings for %s %v on %s\n\n", layer.Name, layer.Sizes, cfg.Name)
	for _, strat := range []struct {
		name string
		s    interface{ String() string }
		opt  maestro.MapperOptions
	}{
		{"exhaustive sub-grid", maestro.MapperExhaustive, maestro.MapperOptions{Strategy: maestro.MapperExhaustive, Budget: 600}},
		{"random sampling", maestro.MapperRandomSample, maestro.MapperOptions{Strategy: maestro.MapperRandomSample, Budget: 600, Seed: 42}},
		{"hill climbing", maestro.MapperHillClimb, maestro.MapperOptions{Strategy: maestro.MapperHillClimb, Budget: 600, Seed: 42}},
	} {
		best, stats, err := maestro.SearchMappings(layer, cfg, strat.opt)
		if err != nil {
			log.Fatalf("%s: %v", strat.name, err)
		}
		fmt.Printf("%-20s %6d evaluated, %5d invalid -> %d cycles (%.1f%% util)\n",
			strat.name, stats.Evaluated, stats.Invalid,
			best.Result.Runtime, 100*best.Result.Utilization())
		fmt.Printf("%-20s best: %s\n", "", best.Candidate)
	}

	// Compare against the named dataflows and show the roofline placement.
	fmt.Println("\nnamed dataflows on the same layer:")
	var fastest *maestro.Result
	for _, name := range maestro.DataflowNames {
		r, err := maestro.Analyze(maestro.DataflowByName(name), layer, cfg)
		if err != nil {
			continue
		}
		fmt.Printf("  %-6s %10d cycles\n", name, r.Runtime)
		if fastest == nil || r.Runtime < fastest.Runtime {
			fastest = r
		}
	}
	rf := maestro.RooflineOf(fastest)
	fmt.Printf("\nroofline of the best named mapping: intensity %.1f MACs/elem, ", rf.Intensity)
	if rf.ComputeBound {
		fmt.Printf("compute-bound (roof %.0f MAC/cyc, achieved %.1f)\n", rf.Roof(), rf.Achieved)
	} else {
		fmt.Printf("bandwidth-bound (roof %.1f MAC/cyc, achieved %.1f)\n", rf.Roof(), rf.Achieved)
	}
}
