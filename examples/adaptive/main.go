// Adaptive dataflow: the paper's Section 5.1 observation that different
// DNN operators prefer different dataflows, exploited by selecting the
// best mapping per layer (as a flexible accelerator like MAERI or
// FlexFlow could). This example walks MobileNetV2 — whose inverted
// bottlenecks mix point-wise, depth-wise, and dense convolutions — and
// reports the per-layer winner and the end-to-end gain.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	maestro "repro"
)

func main() {
	model := maestro.MobileNetV2()
	cfg := maestro.Accel256()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "layer\tclass\tbest dataflow\truntime (cyc)\tvs worst")
	fixed := map[string]int64{}
	var adaptive int64
	shown := 0
	for _, li := range model.Layers {
		var bestName string
		var bestRT, worstRT int64
		for _, name := range maestro.DataflowNames {
			r, err := maestro.Analyze(maestro.DataflowByName(name), li.Layer, cfg)
			if err != nil {
				log.Fatalf("%s on %s: %v", name, li.Layer.Name, err)
			}
			rt := r.Runtime * int64(li.Count)
			fixed[name] += rt
			if bestName == "" || rt < bestRT {
				bestName, bestRT = name, rt
			}
			if rt > worstRT {
				worstRT = rt
			}
		}
		adaptive += bestRT
		if shown < 12 {
			fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%.1fx\n",
				li.Layer.Name, maestro.ClassifyLayer(li.Layer), bestName, bestRT,
				float64(worstRT)/float64(bestRT))
			shown++
		}
	}
	tw.Flush()
	fmt.Println("  ... (remaining layers elided)")

	bestFixedName, bestFixed := "", int64(0)
	for name, rt := range fixed {
		if bestFixedName == "" || rt < bestFixed {
			bestFixedName, bestFixed = name, rt
		}
	}
	fmt.Printf("\nMobileNetV2 totals on %d PEs:\n", cfg.NumPEs)
	for _, name := range maestro.DataflowNames {
		fmt.Printf("  fixed %-5s %15d cycles\n", name, fixed[name])
	}
	fmt.Printf("  adaptive    %15d cycles (%.1f%% faster than the best fixed dataflow, %s)\n",
		adaptive, 100*(1-float64(adaptive)/float64(bestFixed)), bestFixedName)
}
