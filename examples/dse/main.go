// Design-space exploration: size an accelerator for one layer under an
// area/power budget (the paper's Section 5.2 workflow). The example
// sweeps PEs, NoC bandwidth, KC-P tile sizes, and L2 capacity for a late
// VGG16 layer, then prints the throughput-, energy- and EDP-optimal
// designs and the Pareto frontier.
package main

import (
	"fmt"
	"sort"

	maestro "repro"
)

func main() {
	vgg := maestro.VGG16()
	layer, _ := vgg.Find("CONV11")

	space := maestro.DSESpace{
		Layer: layer.Layer,
		Template: maestro.DSETemplate{
			Name:  "KC-P",
			Build: maestro.KCPSized,
			P1:    []int{16, 32, 64, 128, 256, 512}, // channels staged per pass
			P2:    []int{8, 16, 32, 64},             // PEs per reduction cluster
		},
		PEs:           []int{32, 64, 128, 192, 256, 384, 512, 768, 1024},
		BWs:           []float64{4, 8, 16, 32, 64, 128},
		L1Grid:        maestro.DefaultGrid(64, 1<<16, 2),
		L2Grid:        maestro.DefaultGrid(1<<12, 1<<23, 1.5),
		AreaBudgetMM2: 16, // the Eyeriss-class budget of Figure 13
		PowerBudgetMW: 450,
		Cost:          maestro.Default28nm(),
	}
	points, stats := maestro.Explore(space)
	fmt.Printf("explored %d designs (%d valid, %d model invocations) in %.2fs — %.3g designs/s\n\n",
		stats.Explored, stats.Valid, stats.Invoked, stats.Elapsed.Seconds(), stats.Rate())

	show := func(tag string, p maestro.DSEPoint) {
		fmt.Printf("%-15s %4d PEs, %3.0f elem/cyc NoC, %6.1f KB L2  ->  %6.1f MAC/cyc, %6.1f mW, %.3g pJ\n",
			tag, p.NumPEs, p.BW, float64(p.L2Bytes)/1024, p.Throughput, p.PowerMW, p.EnergyPJ)
	}
	if p, ok := maestro.ThroughputOpt(points); ok {
		show("throughput-opt", p)
	}
	if p, ok := maestro.EnergyOpt(points); ok {
		show("energy-opt", p)
	}
	if p, ok := maestro.EDPOpt(points); ok {
		show("edp-opt", p)
	}

	front := maestro.Pareto(points)
	sort.Slice(front, func(i, j int) bool { return front[i].Throughput < front[j].Throughput })
	fmt.Printf("\nthroughput/energy Pareto frontier (%d points):\n", len(front))
	for _, p := range front {
		fmt.Printf("  %6.1f MAC/cyc  %.3g pJ  (%d PEs, %.0f elem/cyc, %.1f KB L2, %.2f mm²)\n",
			p.Throughput, p.EnergyPJ, p.NumPEs, p.BW, float64(p.L2Bytes)/1024, p.AreaMM2)
	}
}
