// Custom dataflow: author a new mapping in the MAESTRO DSL, validate it
// against the step-accurate reference simulator, and compare it to the
// built-in dataflows. The example mapping parallelizes output rows across
// clusters and output channels within each cluster — a hybrid of the
// paper's YX-P and KC-P styles.
package main

import (
	"fmt"
	"log"

	maestro "repro"
)

const customSrc = `
	// Level 0: one output row strip per cluster.
	TemporalMap(1,1) C;
	SpatialMap(Sz(R),1) Y;
	TemporalMap(4+Sz(S)-1,4) X;
	TemporalMap(Sz(R),Sz(R)) R;
	TemporalMap(Sz(S),Sz(S)) S;
	Cluster(8, P);
	// Level 1: eight output channels in parallel within the cluster.
	SpatialMap(1,1) K;
`

func main() {
	df, err := maestro.ParseDataflow("YK-hybrid", customSrc)
	if err != nil {
		log.Fatal(err)
	}
	layer := maestro.Conv2D("conv", 32, 16, 28, 3, 1)
	cfg := maestro.Accel256()

	// Resolve binds the symbolic sizes (Sz(R), Sz(S)) to the layer and
	// splits the directives into cluster levels.
	spec, err := maestro.Resolve(df, layer, cfg.NumPEs)
	if err != nil {
		log.Fatal(err)
	}

	ana, err := maestro.AnalyzeSpec(spec, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := ana.CheckConservation(); err != nil {
		log.Fatal(err) // the mapping would silently skip or repeat work
	}

	// Cross-check the analytical estimate against the step-accurate
	// simulator (the paper's Figure 9 methodology).
	simr, err := maestro.Simulate(spec, cfg)
	if err != nil {
		log.Fatal(err)
	}
	errPct := 100 * abs(float64(ana.OnChipRuntime)-float64(simr.Cycles)) / float64(simr.Cycles)
	fmt.Printf("custom dataflow %q on %v\n", df.Name, layer.Sizes)
	fmt.Printf("  analytical: %d cycles, simulator: %d cycles (%.2f%% error)\n",
		ana.OnChipRuntime, simr.Cycles, errPct)

	fmt.Println("\nagainst the built-in dataflows:")
	fmt.Printf("  %-10s %12d cycles  %8.1f uJ\n", df.Name, ana.Runtime, ana.EnergyDefault().OnChip()/1e6)
	for _, name := range maestro.DataflowNames {
		r, err := maestro.Analyze(maestro.DataflowByName(name), layer, cfg)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("  %-10s %12d cycles  %8.1f uJ\n", name, r.Runtime, r.EnergyDefault().OnChip()/1e6)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
