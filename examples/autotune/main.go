// Auto-tuner: the paper's Section 7 future work, built on the cost
// model. For each layer of a small CNN the tuner searches across the
// five Table 3 dataflow styles and their tile-size knobs, returning the
// best mapping for the chosen objective. Run once for latency and once
// for energy to see the objectives disagree.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	maestro "repro"
)

func main() {
	cfg := maestro.Accel256()
	layers := []maestro.Layer{
		maestro.Conv2D("stem", 32, 3, 112, 3, 2),
		maestro.Conv2D("mid", 128, 128, 28, 3, 1),
		maestro.Conv2D("head", 512, 256, 7, 3, 1),
	}

	for _, objective := range []maestro.TunerOptions{
		{Objective: maestro.MinRuntime},
		{Objective: maestro.MinEnergy},
		{Objective: maestro.MinEDP},
	} {
		fmt.Printf("objective: %s\n", objective.Objective)
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "layer\tbest mapping\truntime (cyc)\tenergy (uJ)\tutilization")
		for _, l := range layers {
			choice, err := maestro.TuneLayer(l, cfg, objective)
			if err != nil {
				log.Fatalf("%s: %v", l.Name, err)
			}
			r := choice.Result
			fmt.Fprintf(tw, "%s\t%s\t%d\t%.1f\t%.1f%%\n",
				l.Name, choice.Dataflow.Name, r.Runtime,
				r.EnergyDefault().OnChip()/1e6, 100*r.Utilization())
		}
		tw.Flush()
		fmt.Println()
	}

	fmt.Println("The tuned tile sizes matter as much as the style: the same KC-P")
	fmt.Println("skeleton with a different cluster size or channel tile can move a")
	fmt.Println("layer from NoC-bound to compute-bound.")
}
