// Network scheduling: run a whole model through the scheduler, which
// keeps activations resident in the shared L2 between layers and pins
// residual sources — the inter-layer effects the paper's Table 4 lists
// for residual links. The example compares DRAM traffic with and
// without residency on a ResNet-style block chain.
package main

import (
	"fmt"
	"log"

	maestro "repro"
)

func main() {
	// A four-layer residual block: 1x1 reduce, 3x3, 1x1 expand, next 1x1.
	mk := func(name string, k, c, out, r int) maestro.LayerInst {
		l := maestro.Conv2D(name, k, c, out, r, 1)
		return maestro.LayerInst{Layer: l, Count: 1, Class: maestro.ClassifyLayer(l)}
	}
	model := maestro.Model{Name: "res-block", Layers: []maestro.LayerInst{
		mk("reduce", 64, 256, 28, 1),
		mk("conv3x3", 64, 64, 28, 3),
		mk("expand", 256, 64, 28, 1),
		mk("next", 64, 256, 28, 1),
	}}
	// The block input (layer 0's input == residual source) is re-added at
	// layer 3; model it as layer 0's output feeding layer 3.
	residuals := []maestro.ResidualEdge{{From: 0, To: 3}}
	cfg := maestro.Accel256()
	fixed := func(maestro.Layer) (maestro.Dataflow, bool) {
		return maestro.DataflowByName("KC-P"), true
	}

	runs := []struct {
		name string
		opt  maestro.NetOptions
	}{
		{"no residency (layer-by-layer DRAM round trips)", maestro.NetOptions{Dataflow: fixed}},
		{"1 MB L2 residency", maestro.NetOptions{Dataflow: fixed, L2Bytes: 1 << 20}},
		{"1 MB L2 + residual pinned", maestro.NetOptions{Dataflow: fixed, L2Bytes: 1 << 20, Residuals: residuals}},
		{"tuned mappings + residency", maestro.NetOptions{L2Bytes: 1 << 20, Residuals: residuals}},
	}
	for _, run := range runs {
		s, err := maestro.ScheduleNetwork(model, cfg, run.opt)
		if err != nil {
			log.Fatalf("%s: %v", run.name, err)
		}
		fmt.Printf("%-46s %9d cycles  %9d DRAM elems  %.1f uJ\n",
			run.name, s.TotalCycles, s.DRAMTraffic, s.EnergyPJ/1e6)
	}

	fmt.Println("\nper-layer residency of the pinned schedule:")
	s, _ := maestro.ScheduleNetwork(model, cfg, runs[2].opt)
	for _, p := range s.Plans {
		fmt.Printf("  %-8s in-resident=%-5v out-resident=%-5v pinned=%dB dram=%d\n",
			p.Inst.Layer.Name, p.InputResident, p.OutputResident, p.HeldBytes,
			p.DRAMReads+p.DRAMWrites)
	}
}
