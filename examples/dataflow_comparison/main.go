// Dataflow comparison: the paper's Section 5.1 case study in miniature.
// Early layers (wide activations, shallow channels) and late layers
// (narrow activations, deep channels) prefer different dataflows; this
// example quantifies runtime, energy, and NoC bandwidth for all five
// Table 3 dataflows on both extremes.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	maestro "repro"
)

func main() {
	vgg := maestro.VGG16()
	early, _ := vgg.Find("CONV1") // 224x224, 3 input channels
	late, _ := vgg.Find("CONV13") // 14x14, 512 channels
	cfg := maestro.Accel256()

	for _, sel := range []struct {
		title string
		layer maestro.Layer
	}{
		{"Early layer: VGG16 CONV1", early.Layer},
		{"Late layer: VGG16 CONV13", late.Layer},
	} {
		fmt.Printf("%s  %v\n", sel.title, sel.layer.Sizes)
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "dataflow\truntime (cyc)\tutilization\tenergy (uJ)\tNoC BW req (GB/s)")
		var best string
		var bestRT int64
		for _, name := range maestro.DataflowNames {
			r, err := maestro.Analyze(maestro.DataflowByName(name), sel.layer, cfg)
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			if best == "" || r.Runtime < bestRT {
				best, bestRT = name, r.Runtime
			}
			fmt.Fprintf(tw, "%s\t%d\t%.1f%%\t%.1f\t%.1f\n",
				name, r.Runtime, 100*r.Utilization(),
				r.EnergyDefault().OnChip()/1e6, r.PeakBWGBps())
		}
		tw.Flush()
		fmt.Printf("fastest on this layer: %s\n\n", best)
	}

	fmt.Println("The early layer starves channel-parallel dataflows (C-P has 3 of 256")
	fmt.Println("PEs busy) while activation-parallel dataflows (YX-P) shine; the late")
	fmt.Println("layer reverses the preference — the motivation for adaptive and")
	fmt.Println("heterogeneous accelerators in the paper's Section 5.1.")
}
