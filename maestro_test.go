package maestro_test

import (
	"math"
	"math/rand"
	"testing"

	maestro "repro"
)

// randLayer draws a small random convolution.
func randLayer(rng *rand.Rand) maestro.Layer {
	r := 1 + rng.Intn(3)      // 1..3
	stride := 1 + rng.Intn(2) // 1..2
	out := 2 + rng.Intn(9)    // 2..10 outputs per axis
	in := (out-1)*stride + r
	return maestro.Layer{
		Name: "rand", Op: maestro.OpConv2D,
		Sizes: maestro.Sizes{
			maestro.N: 1 + rng.Intn(2),
			maestro.K: 1 + rng.Intn(8),
			maestro.C: 1 + rng.Intn(8),
			maestro.Y: in, maestro.X: in,
			maestro.R: r, maestro.S: r,
		},
		StrideY: stride, StrideX: stride,
	}.Normalize()
}

// randDataflow draws a random mapping for the layer: a shuffled nest of
// tiled temporal maps with one spatially mapped dimension, optionally
// split into two cluster levels.
func randDataflow(rng *rand.Rand, layer maestro.Layer) maestro.Dataflow {
	type dimPlan struct {
		d            maestro.Dim
		size, offset int
	}
	var plans []dimPlan
	for _, d := range []maestro.Dim{maestro.N, maestro.K, maestro.C} {
		sz := layer.Sizes.Get(d)
		s := 1 + rng.Intn(sz)
		plans = append(plans, dimPlan{d, s, s})
	}
	// Filter dims: occasionally tiled (the anchored-window case); the
	// activation chunks below always host a full window.
	for _, d := range []maestro.Dim{maestro.R, maestro.S} {
		if rng.Intn(3) == 0 {
			sz := layer.Sizes.Get(d)
			t := 1 + rng.Intn(sz)
			plans = append(plans, dimPlan{d, t, t})
		}
	}
	// Sliding dims: size >= window, offset a stride multiple that leaves
	// no output gaps (offset <= size - window + stride).
	for _, d := range []maestro.Dim{maestro.Y, maestro.X} {
		win := layer.Sizes.Get(maestro.R)
		stride := layer.StrideY
		if d == maestro.X {
			win = layer.Sizes.Get(maestro.S)
			stride = layer.StrideX
		}
		sz := layer.Sizes.Get(d)
		// Candidate sizes covering whole output strides.
		nOut := 1 + rng.Intn(3)
		s := (nOut-1)*stride + win
		if s > sz {
			s = sz
		}
		off := nOut * stride
		plans = append(plans, dimPlan{d, s, off})
	}
	rng.Shuffle(len(plans), func(i, j int) { plans[i], plans[j] = plans[j], plans[i] })

	spatial := rng.Intn(len(plans))
	var dirs []maestro.Directive
	for i, p := range plans {
		if i == spatial {
			dirs = append(dirs, maestro.SMap(maestro.Lit(p.size), maestro.Lit(p.offset), p.d))
		} else {
			dirs = append(dirs, maestro.TMap(maestro.Lit(p.size), maestro.Lit(p.offset), p.d))
		}
	}
	// Optionally add an inner cluster level parallelizing a different dim.
	if rng.Intn(2) == 0 {
		inner := plans[(spatial+1)%len(plans)]
		dirs = append(dirs, maestro.ClusterOf(maestro.Lit(2)),
			maestro.SMap(maestro.Lit(1), maestro.Lit(1), inner.d))
	}
	return maestro.Dataflow{Name: "rand", Directives: dirs}
}

// TestRandomDataflowConservation is the repository's fuzz-style
// correctness test: any mapping the resolver accepts must compute exactly
// the algorithmic MACs and commit the output tensor exactly once.
func TestRandomDataflowConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := maestro.HWConfig{NumPEs: 8, NoCs: []maestro.NoCModel{maestro.Tree(8)}}.Normalize()
	accepted, rejected := 0, 0
	for i := 0; i < 400; i++ {
		layer := randLayer(rng)
		df := randDataflow(rng, layer)
		spec, err := maestro.Resolve(df, layer, cfg.NumPEs)
		if err != nil {
			rejected++
			continue
		}
		r, err := maestro.AnalyzeSpec(spec, cfg)
		if err != nil {
			rejected++
			continue
		}
		accepted++
		// Overlapping output responsibility (redundant compute) is legal
		// but must never under-compute.
		if r.MACs < layer.MACs() {
			t.Fatalf("case %d: computed %d < algorithmic %d\nlayer %v\n%s",
				i, r.MACs, layer.MACs(), layer.Sizes, df)
		}
		if r.MACs == layer.MACs() {
			if err := r.CheckConservation(); err != nil {
				t.Fatalf("case %d: %v\nlayer %v\n%s", i, err, layer.Sizes, df)
			}
		}
		if r.Runtime <= 0 {
			t.Fatalf("case %d: runtime %d", i, r.Runtime)
		}
		if u := r.Utilization(); u < 0 || u > 1.000001 {
			t.Fatalf("case %d: utilization %v\nlayer %v\n%s", i, u, layer.Sizes, df)
		}
	}
	if accepted < 100 {
		t.Fatalf("generator too weak: only %d accepted (%d rejected)", accepted, rejected)
	}
	t.Logf("random mappings: %d accepted, %d rejected by the resolver", accepted, rejected)
}

// TestRandomDataflowMatchesSimulator cross-validates the analytical model
// against the step-accurate simulator on random mappings (Figure 9
// methodology, randomized).
func TestRandomDataflowMatchesSimulator(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cfg := maestro.HWConfig{NumPEs: 8, NoCs: []maestro.NoCModel{maestro.Tree(8)}}.Normalize()
	checked := 0
	var worst float64
	for i := 0; i < 120 && checked < 40; i++ {
		layer := randLayer(rng)
		df := randDataflow(rng, layer)
		spec, err := maestro.Resolve(df, layer, cfg.NumPEs)
		if err != nil {
			continue
		}
		ana, err := maestro.AnalyzeSpec(spec, cfg)
		if err != nil || ana.MACs != layer.MACs() {
			continue // exact mappings only; redundant-compute cases differ by design
		}
		simr, err := maestro.Simulate(spec, cfg)
		if err != nil {
			t.Fatalf("case %d: sim: %v\n%s", i, err, df)
		}
		if simr.MACs != ana.MACs {
			t.Fatalf("case %d: MACs sim %d vs analytical %d\nlayer %v\n%s",
				i, simr.MACs, ana.MACs, layer.Sizes, df)
		}
		relErr := math.Abs(float64(ana.OnChipRuntime)-float64(simr.Cycles)) / float64(simr.Cycles)
		if relErr > worst {
			worst = relErr
		}
		if relErr > 0.30 {
			t.Errorf("case %d: runtime analytical %d vs sim %d (%.1f%%)\nlayer %v\n%s",
				i, ana.OnChipRuntime, simr.Cycles, 100*relErr, layer.Sizes, df)
		}
		checked++
	}
	if checked < 20 {
		t.Fatalf("only %d cases cross-checked", checked)
	}
	t.Logf("%d random mappings cross-checked; worst runtime error %.2f%%", checked, 100*worst)
}

// TestPublicAPIWorkflow exercises the documented quick-start path.
func TestPublicAPIWorkflow(t *testing.T) {
	layer := maestro.Conv2D("conv3x3", 64, 64, 56, 3, 1)
	df := maestro.DataflowByName("KC-P")
	r, err := maestro.Analyze(df, layer, maestro.Accel256())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if r.String() == "" {
		t.Fatal("empty report")
	}
	// Tuner path.
	ch, err := maestro.TuneLayer(layer, maestro.Accel256(), maestro.TunerOptions{Objective: maestro.MinRuntime})
	if err != nil {
		t.Fatal(err)
	}
	if ch.Result.Runtime > r.Runtime {
		t.Errorf("tuner (%d) worse than fixed KC-P (%d)", ch.Result.Runtime, r.Runtime)
	}
	// DSL path.
	net, err := maestro.ParseNetwork(`Network n { Layer L {
		Type: CONV2D
		Dimensions { N:1, K:8, C:8, Y:10, X:10, R:3, S:3 }
		Dataflow { SpatialMap(1,1) K; TemporalMap(Sz(R),1) Y; TemporalMap(Sz(S),1) X; }
	} }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := maestro.Analyze(net.Layers[0].Dataflow, net.Layers[0].Layer, maestro.Accel256()); err != nil {
		t.Fatal(err)
	}
}

// TestWithL2Retention checks the DRAM retention model: growing L2 from
// the staging requirement to the working set must cut DRAM traffic to
// compulsory, and shrinking it below the requirement must spill.
func TestWithL2Retention(t *testing.T) {
	layer := maestro.Conv2D("conv", 64, 64, 28, 3, 1)
	r, err := maestro.Analyze(maestro.DataflowByName("KC-P"), layer, maestro.Accel256())
	if err != nil {
		t.Fatal(err)
	}
	small := r.WithL2(r.L2ReqBytes())
	big := r.WithL2(64 << 20)
	if big.DRAMReads > small.DRAMReads {
		t.Errorf("bigger L2 increased DRAM reads: %d vs %d", big.DRAMReads, small.DRAMReads)
	}
	compulsory := layer.TensorSize(maestro.Input) + layer.TensorSize(maestro.Weight)
	if big.DRAMReads != compulsory {
		t.Errorf("retained working set should cost compulsory %d reads, got %d", compulsory, big.DRAMReads)
	}
	spilled := r.WithL2(16)
	if !spilled.L2Spill {
		t.Error("sub-requirement L2 must spill")
	}
	if spilled.DRAMReads < big.DRAMReads {
		t.Error("spilling should never reduce DRAM traffic")
	}
}
